"""Empirical meta-game analysis: simulate the strategy tournament.

The paper's analytical model predicts the interactive equilibrium; this
module closes the loop empirically.  Every collector strategy is played
against every adversary strategy in full collection games; each cell of
the resulting *empirical payoff matrix* is scored the way §III-B defines
payoffs — the adversary earns the surviving poison mass (weighted by its
position, the ``P(x)`` reading) and the collector loses that plus the
trimming overhead (the benign mass she removed).

Solving the matrix as a zero-sum game with the minimax LP then yields an
*empirical* Stackelberg/minimax profile, which the bench compares against
the analytic expectations: tolerant collectors are exploited by evasive
adversaries, the grim trigger dominates against extreme play, and the
empirical equilibrium concentrates on the adaptive schemes.

Execution goes through the :mod:`repro.runtime` sweep runner: the
(collector × adversary × repetition) grid expands into self-contained
:class:`~repro.runtime.spec.GameSpec` cells with collision-free
``SeedSequence``-derived seeds (the previous ``seed + 101*rep + 13*i +
7*j`` arithmetic collided across cells, silently correlating
repetitions), and ``TournamentConfig.workers > 1`` plays the grid on a
process pool — byte-identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.game import solve_zero_sum
from ..core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    JustBelowAdversary,
    MixedAdversary,
    OstrichCollector,
    StaticCollector,
    TitForTatCollector,
)
from ..runtime import ComponentSpec, SweepGrid, SweepRunner, cross_pairs

__all__ = [
    "TournamentConfig",
    "TournamentResult",
    "aggregate_tournament",
    "run_tournament",
    "tournament_plan",
]


def _default_collectors(t_th: float) -> Dict[str, ComponentSpec]:
    return {
        "ostrich": ComponentSpec(OstrichCollector),
        "static": ComponentSpec(StaticCollector, {"threshold": t_th}),
        "titfortat": ComponentSpec(
            TitForTatCollector, {"t_th": t_th, "trigger": None}
        ),
        "elastic0.5": ComponentSpec(ElasticCollector, {"t_th": t_th, "k": 0.5}),
    }


def _default_adversaries(t_th: float) -> Dict[str, ComponentSpec]:
    return {
        "extreme@0.99": ComponentSpec(FixedAdversary, {"percentile": 0.99}),
        "just-below": ComponentSpec(
            JustBelowAdversary, {"initial_threshold": t_th}
        ),
        "mixed(p=0.5)": ComponentSpec(MixedAdversary, {"p": 0.5}, seeded=True),
        "elastic0.5": ComponentSpec(ElasticAdversary, {"t_th": t_th, "k": 0.5}),
    }


@dataclass(frozen=True)
class TournamentConfig:
    """Parameters of the empirical meta-game."""

    dataset: str = "control"
    t_th: float = 0.9
    attack_ratio: float = 0.2
    rounds: int = 10
    repetitions: int = 2
    batch_size: int = 100
    overhead_weight: float = 1.0
    seed: int = 0
    workers: int = 1
    #: Lockstep width for the repetition axis ("auto" plays all reps of
    #: a cell in one BatchedCollectionGame; byte-identical to "off").
    rep_batch: object = "auto"


@dataclass(frozen=True)
class TournamentResult:
    """Empirical payoff matrices and the solved meta-game."""

    collector_names: Tuple[str, ...]
    adversary_names: Tuple[str, ...]
    adversary_payoffs: np.ndarray  # (n_adversaries, n_collectors)
    collector_payoffs: np.ndarray
    adversary_mixture: np.ndarray
    collector_mixture: np.ndarray
    game_value: float

    def best_collector(self) -> str:
        """Collector with the largest mass in the minimax mixture."""
        return self.collector_names[int(np.argmax(self.collector_mixture))]

    def best_adversary(self) -> str:
        """Adversary with the largest mass in the minimax mixture."""
        return self.adversary_names[int(np.argmax(self.adversary_mixture))]


def _score_game(result, overhead_weight: float) -> Tuple[float, float]:
    """(adversary, collector) payoffs of one finished game.

    Adversary payoff: surviving poison mass per round, weighted by the
    injection percentile (a surviving extreme value deviates more —
    the increasing-``P(x)`` reading of §III-B).  Collector payoff: the
    zero-sum negation minus the trimming overhead (benign mass removed).

    Works off the board's column arrays — no per-round entry objects are
    materialized, which keeps rep-batched results cheap to reduce.  The
    per-round terms are accumulated left to right (``sum`` over the term
    list), preserving the exact float sequence of the original
    entry-loop accumulation.
    """
    cols = result.board.columns
    weight = np.where(
        np.isnan(cols.injection_percentile), 0.0, cols.injection_percentile
    )
    n_benign = cols.n_collected - cols.n_poison_injected
    n_benign_kept = cols.n_retained - cols.n_poison_retained
    denom = np.maximum(1, n_benign)
    poison_gain = float(sum((weight * cols.n_poison_retained / denom).tolist()))
    benign_trimmed = float(sum(((n_benign - n_benign_kept) / denom).tolist()))
    n = cols.rounds
    adversary = poison_gain / n
    collector = -adversary - overhead_weight * benign_trimmed / n
    return adversary, collector


def _payoff_reduce(spec, result, overhead_weight: float) -> dict:
    """In-worker reducer: tags plus the two §III-B payoffs."""
    adversary, collector = _score_game(result, overhead_weight)
    return {
        "collector": spec.tags["collector"],
        "adversary": spec.tags["adversary"],
        "rep": spec.tags["rep"],
        "adversary_payoff": adversary,
        "collector_payoff": collector,
    }


def tournament_plan(config: TournamentConfig) -> Tuple[List, Callable]:
    """The meta-game's declarative half: grid-order specs plus reducer."""
    collectors = _default_collectors(config.t_th)
    adversaries = _default_adversaries(config.t_th)

    grid = SweepGrid(
        pairs=cross_pairs(collectors, adversaries),
        datasets=(config.dataset,),
        attack_ratios=(config.attack_ratio,),
        repetitions=config.repetitions,
        rounds=config.rounds,
        batch_size=config.batch_size,
        anchor="reference",
        # The payoff reducer only reads per-round counts, so the games
        # run on lean boards — no per-round retained arrays are kept.
        store_retained=False,
        seed=config.seed,
    )
    reduce = partial(_payoff_reduce, overhead_weight=config.overhead_weight)
    return grid.expand(), reduce


def aggregate_tournament(
    config: TournamentConfig, records: Sequence[dict]
) -> TournamentResult:
    """Build and solve the empirical payoff matrices from cell records."""
    collector_names = tuple(_default_collectors(config.t_th))
    adversary_names = tuple(_default_adversaries(config.t_th))

    # Aggregate repetitions in grid order: the per-cell means are summed
    # in a fixed sequence, so the matrices are byte-identical for any
    # worker count.
    cells: Dict[Tuple[str, str], list] = {}
    for record in records:
        key = (record["adversary"], record["collector"])
        cells.setdefault(key, []).append(record)

    adv_matrix = np.zeros((len(adversary_names), len(collector_names)))
    col_matrix = np.zeros_like(adv_matrix)
    for i, aname in enumerate(adversary_names):
        for j, cname in enumerate(collector_names):
            reps = cells[(aname, cname)]
            adv_matrix[i, j] = float(
                np.mean([r["adversary_payoff"] for r in reps])
            )
            col_matrix[i, j] = float(
                np.mean([r["collector_payoff"] for r in reps])
            )

    # Solve the zero-sum reading of the meta-game (adversary maximizes
    # surviving weighted poison; the overhead enters the collector's own
    # matrix but not the adversarial part).
    adv_mix, col_mix, value = solve_zero_sum(adv_matrix)
    return TournamentResult(
        collector_names=collector_names,
        adversary_names=adversary_names,
        adversary_payoffs=adv_matrix,
        collector_payoffs=col_matrix,
        adversary_mixture=adv_mix,
        collector_mixture=col_mix,
        game_value=float(value),
    )


def run_tournament(
    config: TournamentConfig, store: Optional[object] = None
) -> TournamentResult:
    """Play the full strategy cross-product and solve the meta-game."""
    specs, reduce = tournament_plan(config)
    runner = SweepRunner(
        workers=config.workers,
        reduce=reduce,
        rep_batch=config.rep_batch,
        store=store,
    )
    return aggregate_tournament(config, runner.run(specs))
