"""Fig. 9 runner: trimming defenses vs EMF under LDP perturbation.

The §VI-E case study: honest users hold Taxi values in [-1, 1] and report
through an LDP mechanism; the colluding attackers mount the *input
manipulation attack* [7] — counterfeit the input that maximizes mean
deviation (the domain maximum) and then follow the protocol honestly,
which makes each poisoned report individually indistinguishable from an
honest one.

Defenses compared per (ε, attack ratio):

* **Titfortat / Elastic 0.1 / Elastic 0.5** — the game strategies drive a
  percentile trim of the *report* stream (Piecewise Mechanism reports,
  reference-calibrated cutoffs, bias-corrected trimmed mean).  The
  Tit-for-tat trigger and the Elastic quality-feedback rule (Algorithm 2's
  convex combination — the injection position is unobservable under LDP)
  evolve the threshold across rounds.
* **EMF** — the Expectation-Maximization Filter baseline on Square-Wave
  reports, given the true attack fraction (a charitable setting).

The metric is the MSE of the final mean estimate against the clean sample
mean, averaged over repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.quality import TailMassEvaluator
from ..core.strategies import ElasticCollector, QualityTrigger, TitForTatCollector
from ..core.strategies.base import RoundObservation
from ..datasets.taxi import generate_taxi
from ..ldp.attacks import InputManipulationAttack
from ..ldp.emf import ExpectationMaximizationFilter
from ..ldp.estimators import TrimmedMeanEstimator
from ..ldp.mechanisms import PiecewiseMechanism
from ..ldp.square_wave import SquareWaveMechanism
from ..runtime import ComponentSpec, SweepRunner, TaskSpec

__all__ = [
    "LDPConfig",
    "LDPCell",
    "LDP_SCHEMES",
    "aggregate_ldp",
    "ldp_specs",
    "run_ldp_experiment",
]

#: Scheme order of the Fig. 9 comparison (the paper's plotting order).
LDP_SCHEMES = ("titfortat", "elastic0.1", "elastic0.5", "emf")


@dataclass(frozen=True)
class LDPConfig:
    """Parameters of the Fig. 9 sweep."""

    epsilons: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)
    attack_ratios: Sequence[float] = (0.05, 0.1, 0.15, 0.2)
    n_users: int = 2000
    rounds: int = 5
    repetitions: int = 3
    t_th: float = 0.95
    redundancy: float = 0.05
    reference_size: int = 4000
    seed: int = 0


@dataclass(frozen=True)
class LDPCell:
    """One (scheme, ε, attack ratio) MSE measurement."""

    scheme: str
    epsilon: float
    attack_ratio: float
    mse: float


def _trimming_scheme_mse(
    scheme: str,
    epsilon: float,
    attack_ratio: float,
    rep_seed: int,
    n_users: int = 2000,
    rounds: int = 5,
    t_th: float = 0.95,
    redundancy: float = 0.05,
    reference_size: int = 4000,
) -> float:
    """One repetition of a trimming defense; returns squared error.

    Takes only the scalars it consumes (not the whole
    :class:`LDPConfig`), so a cell's store key — built from these
    kwargs — is untouched by changes to unrelated config fields such as
    the grid axes or the repetition count: growing a sweep reuses every
    already-stored cell.
    """
    rng = np.random.default_rng(rep_seed)
    mechanism = PiecewiseMechanism(epsilon, seed=rep_seed + 1)

    # Public calibration: clean reference pushed through the mechanism.
    reference_inputs = generate_taxi(reference_size, seed=rep_seed + 2)
    reference_reports = mechanism.perturb(reference_inputs)
    estimator = TrimmedMeanEstimator(reference_reports)
    evaluator = TailMassEvaluator(reference_quantile=t_th)
    evaluator.fit(reference_reports)

    if scheme == "titfortat":
        collector = TitForTatCollector(
            t_th,
            trigger=QualityTrigger(reference_score=0.0, redundancy=redundancy),
        )
    elif scheme.startswith("elastic"):
        collector = ElasticCollector(t_th, float(scheme[len("elastic"):]))
    else:
        raise ValueError(f"unknown trimming scheme {scheme!r}")
    collector.reset()

    attack = InputManipulationAttack(target=1.0)
    n_attackers = int(round(attack_ratio * n_users))

    estimates = []
    true_means = []
    threshold = collector.first()
    for round_index in range(1, rounds + 1):
        honest_inputs = generate_taxi(n_users, seed=int(rng.integers(2**31)))
        true_means.append(float(np.mean(honest_inputs)))
        reports = np.concatenate(
            [
                mechanism.perturb(honest_inputs),
                attack.reports(mechanism, n_attackers),
            ]
        )
        estimates.append(estimator.estimate(reports, threshold))

        observed_ratio, quality = evaluator.evaluate(reports)
        observation = RoundObservation(
            index=round_index,
            trim_percentile=float(threshold),
            injection_percentile=None,  # unobservable under LDP
            quality=quality,
            observed_poison_ratio=observed_ratio,
            betrayal=False,
        )
        threshold = collector.react(observation)

    error = float(np.mean(estimates)) - float(np.mean(true_means))
    return error * error


def _emf_mse(
    epsilon: float,
    attack_ratio: float,
    rep_seed: int,
    n_users: int = 2000,
    rounds: int = 5,
) -> float:
    """One repetition of the EMF baseline; returns squared error.

    Scalar kwargs only, for the same store-key granularity reason as
    :func:`_trimming_scheme_mse`.
    """
    rng = np.random.default_rng(rep_seed)
    mechanism = SquareWaveMechanism(epsilon, seed=rep_seed + 1)
    n_attackers = int(round(attack_ratio * n_users))
    emf = ExpectationMaximizationFilter(
        mechanism,
        attack_fraction=n_attackers / (n_users + n_attackers),
        n_input_bins=32,
        n_output_bins=64,
        n_iter=60,
    )

    estimates = []
    true_means = []
    for _ in range(rounds):
        honest_inputs = generate_taxi(n_users, seed=int(rng.integers(2**31)))
        true_means.append(float(np.mean(honest_inputs)))
        honest01 = (honest_inputs + 1.0) / 2.0
        attacker01 = np.ones(n_attackers)
        reports = np.concatenate(
            [mechanism.perturb(honest01), mechanism.perturb(attacker01)]
        )
        estimates.append(emf.fit(reports).mean)

    error = float(np.mean(estimates)) - float(np.mean(true_means))
    return error * error


def _legacy_rep_seed(
    config: LDPConfig, epsilon: float, ratio: float, rep: int
) -> int:
    """The original hand-rolled loop's per-repetition seed.

    Deliberately preserved by the sweep-runtime port so the ported cells
    draw byte-identical RNG streams to the pre-port implementation
    (asserted in the regression tests); the cell's *identity* for
    caching is the full :class:`~repro.runtime.spec.TaskSpec` recipe,
    which embeds this seed.
    """
    return int(
        config.seed + 100_000 * rep + int(epsilon * 1000) + int(ratio * 100)
    )


def ldp_specs(config: LDPConfig) -> List[TaskSpec]:
    """The Fig. 9 sweep as declarative cells.

    Grid order is ratio → ε → scheme → repetition; each cell wraps one
    repetition of one defense (:func:`_trimming_scheme_mse` or
    :func:`_emf_mse`) so the result store checkpoints at single-rep
    granularity and worker processes can fan the grid out.
    """
    specs: List[TaskSpec] = []
    for ratio in config.attack_ratios:
        for epsilon in config.epsilons:
            for scheme in LDP_SCHEMES:
                for rep in range(config.repetitions):
                    rep_seed = _legacy_rep_seed(config, epsilon, ratio, rep)
                    if scheme == "emf":
                        task = ComponentSpec(
                            _emf_mse,
                            {
                                "epsilon": float(epsilon),
                                "attack_ratio": float(ratio),
                                "rep_seed": rep_seed,
                                "n_users": int(config.n_users),
                                "rounds": int(config.rounds),
                            },
                        )
                    else:
                        task = ComponentSpec(
                            _trimming_scheme_mse,
                            {
                                "scheme": scheme,
                                "epsilon": float(epsilon),
                                "attack_ratio": float(ratio),
                                "rep_seed": rep_seed,
                                "n_users": int(config.n_users),
                                "rounds": int(config.rounds),
                                "t_th": float(config.t_th),
                                "redundancy": float(config.redundancy),
                                "reference_size": int(config.reference_size),
                            },
                        )
                    specs.append(
                        TaskSpec(
                            task=task,
                            tags={
                                "scheme": scheme,
                                "epsilon": float(epsilon),
                                "attack_ratio": float(ratio),
                                "rep": rep,
                            },
                        )
                    )
    return specs


def aggregate_ldp(config: LDPConfig, records: Sequence[float]) -> List[LDPCell]:
    """Average grid-order squared errors into the Fig. 9 cells.

    ``records`` must be in :func:`ldp_specs` expansion order; each
    scheme's repetitions are consecutive, and their mean is taken in
    repetition order — the same float sequence the pre-port loop
    averaged, so the aggregate is byte-identical.
    """
    expected = (
        len(config.attack_ratios)
        * len(config.epsilons)
        * len(LDP_SCHEMES)
        * config.repetitions
    )
    if len(records) != expected:
        raise ValueError(f"expected {expected} records, got {len(records)}")
    cells: List[LDPCell] = []
    cursor = 0
    for ratio in config.attack_ratios:
        for epsilon in config.epsilons:
            for scheme in LDP_SCHEMES:
                reps = records[cursor:cursor + config.repetitions]
                cursor += config.repetitions
                cells.append(
                    LDPCell(
                        scheme=scheme,
                        epsilon=float(epsilon),
                        attack_ratio=float(ratio),
                        mse=float(np.mean([float(r) for r in reps])),
                    )
                )
    return cells


def run_ldp_experiment(
    config: LDPConfig,
    store: Optional[object] = None,
    workers: int = 1,
) -> List[LDPCell]:
    """Run the Fig. 9 sweep and return all cells (on the sweep runtime).

    Replaces the hand-rolled ratio × ε × repetition × scheme loops with
    :func:`ldp_specs` cells played through a
    :class:`~repro.runtime.runner.SweepRunner` — byte-identical output
    (the legacy per-rep seeds are preserved, see
    :func:`_legacy_rep_seed`), plus process parallelism and result-store
    resumability.
    """
    runner = SweepRunner(workers=workers, store=store)
    return aggregate_ldp(config, runner.run(ldp_specs(config)))
