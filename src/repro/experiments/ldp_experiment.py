"""Fig. 9 runner: trimming defenses vs EMF under LDP perturbation.

The §VI-E case study: honest users hold Taxi values in [-1, 1] and report
through an LDP mechanism; the colluding attackers mount the *input
manipulation attack* [7] — counterfeit the input that maximizes mean
deviation (the domain maximum) and then follow the protocol honestly,
which makes each poisoned report individually indistinguishable from an
honest one.

Defenses compared per (ε, attack ratio):

* **Titfortat / Elastic 0.1 / Elastic 0.5** — the game strategies drive a
  percentile trim of the *report* stream (Piecewise Mechanism reports,
  reference-calibrated cutoffs, bias-corrected trimmed mean).  The
  Tit-for-tat trigger and the Elastic quality-feedback rule (Algorithm 2's
  convex combination — the injection position is unobservable under LDP)
  evolve the threshold across rounds.
* **EMF** — the Expectation-Maximization Filter baseline on Square-Wave
  reports, given the true attack fraction (a charitable setting).

The metric is the MSE of the final mean estimate against the clean sample
mean, averaged over repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.quality import TailMassEvaluator
from ..core.strategies import ElasticCollector, QualityTrigger, TitForTatCollector
from ..core.strategies.base import RoundObservation
from ..datasets.taxi import generate_taxi
from ..ldp.attacks import InputManipulationAttack
from ..ldp.emf import ExpectationMaximizationFilter
from ..ldp.estimators import TrimmedMeanEstimator
from ..ldp.mechanisms import PiecewiseMechanism
from ..ldp.square_wave import SquareWaveMechanism

__all__ = ["LDPConfig", "LDPCell", "run_ldp_experiment"]


@dataclass(frozen=True)
class LDPConfig:
    """Parameters of the Fig. 9 sweep."""

    epsilons: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)
    attack_ratios: Sequence[float] = (0.05, 0.1, 0.15, 0.2)
    n_users: int = 2000
    rounds: int = 5
    repetitions: int = 3
    t_th: float = 0.95
    redundancy: float = 0.05
    reference_size: int = 4000
    seed: int = 0


@dataclass(frozen=True)
class LDPCell:
    """One (scheme, ε, attack ratio) MSE measurement."""

    scheme: str
    epsilon: float
    attack_ratio: float
    mse: float


def _trimming_scheme_mse(
    scheme: str,
    epsilon: float,
    attack_ratio: float,
    config: LDPConfig,
    rep_seed: int,
) -> float:
    """One repetition of a trimming defense; returns squared error."""
    rng = np.random.default_rng(rep_seed)
    mechanism = PiecewiseMechanism(epsilon, seed=rep_seed + 1)

    # Public calibration: clean reference pushed through the mechanism.
    reference_inputs = generate_taxi(config.reference_size, seed=rep_seed + 2)
    reference_reports = mechanism.perturb(reference_inputs)
    estimator = TrimmedMeanEstimator(reference_reports)
    evaluator = TailMassEvaluator(reference_quantile=config.t_th)
    evaluator.fit(reference_reports)

    if scheme == "titfortat":
        collector = TitForTatCollector(
            config.t_th,
            trigger=QualityTrigger(reference_score=0.0, redundancy=config.redundancy),
        )
    elif scheme.startswith("elastic"):
        collector = ElasticCollector(config.t_th, float(scheme[len("elastic"):]))
    else:
        raise ValueError(f"unknown trimming scheme {scheme!r}")
    collector.reset()

    attack = InputManipulationAttack(target=1.0)
    n_attackers = int(round(attack_ratio * config.n_users))

    estimates = []
    true_means = []
    threshold = collector.first()
    for round_index in range(1, config.rounds + 1):
        honest_inputs = generate_taxi(config.n_users, seed=int(rng.integers(2**31)))
        true_means.append(float(np.mean(honest_inputs)))
        reports = np.concatenate(
            [
                mechanism.perturb(honest_inputs),
                attack.reports(mechanism, n_attackers),
            ]
        )
        estimates.append(estimator.estimate(reports, threshold))

        observed_ratio, quality = evaluator.evaluate(reports)
        observation = RoundObservation(
            index=round_index,
            trim_percentile=float(threshold),
            injection_percentile=None,  # unobservable under LDP
            quality=quality,
            observed_poison_ratio=observed_ratio,
            betrayal=False,
        )
        threshold = collector.react(observation)

    error = float(np.mean(estimates)) - float(np.mean(true_means))
    return error * error


def _emf_mse(
    epsilon: float, attack_ratio: float, config: LDPConfig, rep_seed: int
) -> float:
    """One repetition of the EMF baseline; returns squared error."""
    rng = np.random.default_rng(rep_seed)
    mechanism = SquareWaveMechanism(epsilon, seed=rep_seed + 1)
    n_attackers = int(round(attack_ratio * config.n_users))
    emf = ExpectationMaximizationFilter(
        mechanism,
        attack_fraction=n_attackers / (config.n_users + n_attackers),
        n_input_bins=32,
        n_output_bins=64,
        n_iter=60,
    )

    estimates = []
    true_means = []
    for _ in range(config.rounds):
        honest_inputs = generate_taxi(config.n_users, seed=int(rng.integers(2**31)))
        true_means.append(float(np.mean(honest_inputs)))
        honest01 = (honest_inputs + 1.0) / 2.0
        attacker01 = np.ones(n_attackers)
        reports = np.concatenate(
            [mechanism.perturb(honest01), mechanism.perturb(attacker01)]
        )
        estimates.append(emf.fit(reports).mean)

    error = float(np.mean(estimates)) - float(np.mean(true_means))
    return error * error


def run_ldp_experiment(config: LDPConfig) -> List[LDPCell]:
    """Run the Fig. 9 sweep and return all cells."""
    schemes = ("titfortat", "elastic0.1", "elastic0.5", "emf")
    cells: List[LDPCell] = []
    for ratio in config.attack_ratios:
        for epsilon in config.epsilons:
            per_scheme: Dict[str, List[float]] = {s: [] for s in schemes}
            for rep in range(config.repetitions):
                rep_seed = (
                    config.seed
                    + 100_000 * rep
                    + int(epsilon * 1000)
                    + int(ratio * 100)
                )
                for scheme in schemes:
                    if scheme == "emf":
                        per_scheme[scheme].append(
                            _emf_mse(epsilon, ratio, config, rep_seed)
                        )
                    else:
                        per_scheme[scheme].append(
                            _trimming_scheme_mse(
                                scheme, epsilon, ratio, config, rep_seed
                            )
                        )
            for scheme in schemes:
                cells.append(
                    LDPCell(
                        scheme=scheme,
                        epsilon=float(epsilon),
                        attack_ratio=float(ratio),
                        mse=float(np.mean(per_scheme[scheme])),
                    )
                )
    return cells
