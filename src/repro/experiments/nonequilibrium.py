"""Table III runner: utility of adversaries deviating from equilibrium.

The adversary plays the two-point mixed strategy of §VI-D: the
equilibrium position (99th percentile) with probability ``p`` and the
greedy sub-threshold position (90th) with ``1 - p``.  The Tit-for-tat
collector uses the running-betrayal-ratio trigger with 5% redundancy;
once triggered, trimming permanently hardens.  Reported per ``p``:

* the average termination round of Tit-for-tat (non-terminating games
  are recorded as ``rounds + 5``, matching the paper's ``p = 0`` row of
  25 for a 20-round game);
* the proportion of untrimmed poison in the remaining data, for both
  Tit-for-tat and Elastic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.engine import CollectionGame, NoisyPositionJudge
from ..core.quality import TailMassEvaluator
from ..core.strategies import (
    ElasticCollector,
    MixedAdversary,
    MixedStrategyTrigger,
    TitForTatCollector,
)
from ..core.trimming import RadialTrimmer
from ..datasets.registry import load_dataset
from ..streams.injection import PoisonInjector
from ..streams.source import ArrayStream

__all__ = ["NonEquilibriumConfig", "NonEquilibriumRow", "run_nonequilibrium"]


@dataclass(frozen=True)
class NonEquilibriumRow:
    """One Table III row."""

    p: float
    average_termination_rounds: float
    titfortat_poison_fraction: float
    elastic_poison_fraction: float


@dataclass(frozen=True)
class NonEquilibriumConfig:
    """Parameters of the Table III experiment (§VI-D defaults)."""

    dataset: str = "control"
    t_th: float = 0.9
    attack_ratio: float = 0.2
    rounds: int = 20
    repetitions: int = 5
    batch_size: int = 100
    redundancy: float = 0.05
    elastic_k: float = 0.5
    judge_miss_rate: float = 0.15
    judge_false_positive_rate: float = 0.075
    p_values: Sequence[float] = (
        0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    )
    seed: int = 0


def _play(config: NonEquilibriumConfig, data, collector, p: float, seed: int):
    adversary = MixedAdversary(p, seed=seed + 7)
    game = CollectionGame(
        source=ArrayStream(data, batch_size=config.batch_size, seed=seed),
        collector=collector,
        adversary=adversary,
        injector=PoisonInjector(
            attack_ratio=config.attack_ratio, mode="radial", seed=seed + 1
        ),
        trimmer=RadialTrimmer(),
        reference=data,
        quality_evaluator=TailMassEvaluator(),
        judge=NoisyPositionJudge(
            boundary=config.t_th + 0.005,  # greedy (0.90) is below, eq (0.99) above
            miss_rate=config.judge_miss_rate,
            false_positive_rate=config.judge_false_positive_rate,
            seed=seed + 3,
        ),
        rounds=config.rounds,
        anchor="batch",
    )
    return game.run()


def run_nonequilibrium(config: NonEquilibriumConfig) -> List[NonEquilibriumRow]:
    """Run the §VI-D sweep over the mixed-strategy parameter ``p``."""
    rows: List[NonEquilibriumRow] = []
    cap = config.rounds + 5  # the paper's never-terminated bookkeeping value
    data, _ = load_dataset(config.dataset)

    for p in config.p_values:
        terminations = []
        tft_fractions = []
        elastic_fractions = []
        for rep in range(config.repetitions):
            seed = config.seed + 10_000 * rep + int(round(p * 100))

            tft = TitForTatCollector(
                config.t_th,
                trigger=MixedStrategyTrigger(p, redundancy=config.redundancy),
            )
            result_tft = _play(config, data, tft, p, seed)
            terminations.append(
                cap if result_tft.termination_round is None
                else result_tft.termination_round
            )
            tft_fractions.append(result_tft.poison_retained_fraction())

            elastic = ElasticCollector(config.t_th, config.elastic_k)
            result_el = _play(config, data, elastic, p, seed + 17)
            elastic_fractions.append(result_el.poison_retained_fraction())

        rows.append(
            NonEquilibriumRow(
                p=float(p),
                average_termination_rounds=float(np.mean(terminations)),
                titfortat_poison_fraction=float(np.mean(tft_fractions)),
                elastic_poison_fraction=float(np.mean(elastic_fractions)),
            )
        )
    return rows
