"""Table III runner: utility of adversaries deviating from equilibrium.

The adversary plays the two-point mixed strategy of §VI-D: the
equilibrium position (99th percentile) with probability ``p`` and the
greedy sub-threshold position (90th) with ``1 - p``.  The Tit-for-tat
collector uses the running-betrayal-ratio trigger with 5% redundancy;
once triggered, trimming permanently hardens.  Reported per ``p``:

* the average termination round of Tit-for-tat (non-terminating games
  are recorded as ``rounds + 5``, matching the paper's ``p = 0`` row of
  25 for a 20-round game);
* the proportion of untrimmed poison in the remaining data, for both
  Tit-for-tat and Elastic.

The (p × scheme × repetition) grid runs on the :mod:`repro.runtime`
sweep runner with ``SeedSequence``-derived per-cell seeds; the default
:class:`~repro.runtime.runner.GameRecord` reducer already carries the
termination round and poison fraction, so no custom reducer is needed
and ``NonEquilibriumConfig.workers > 1`` parallelizes the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.engine import NoisyPositionJudge
from ..core.quality import TailMassEvaluator
from ..core.strategies import (
    ElasticCollector,
    MixedAdversary,
    MixedStrategyTrigger,
    TitForTatCollector,
)
from ..runtime import ComponentSpec, StrategyPair, SweepGrid, SweepRunner

__all__ = [
    "NonEquilibriumConfig",
    "NonEquilibriumRow",
    "aggregate_nonequilibrium",
    "nonequilibrium_plan",
    "run_nonequilibrium",
]


@dataclass(frozen=True)
class NonEquilibriumRow:
    """One Table III row."""

    p: float
    average_termination_rounds: float
    titfortat_poison_fraction: float
    elastic_poison_fraction: float


@dataclass(frozen=True)
class NonEquilibriumConfig:
    """Parameters of the Table III experiment (§VI-D defaults)."""

    dataset: str = "control"
    t_th: float = 0.9
    attack_ratio: float = 0.2
    rounds: int = 20
    repetitions: int = 5
    batch_size: int = 100
    redundancy: float = 0.05
    elastic_k: float = 0.5
    judge_miss_rate: float = 0.15
    judge_false_positive_rate: float = 0.075
    p_values: Sequence[float] = (
        0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    )
    seed: int = 0
    workers: int = 1
    #: Lockstep width for the repetition axis ("auto" plays all reps of
    #: a cell in one BatchedCollectionGame; byte-identical to "off").
    rep_batch: object = "auto"


def _pairs(config: NonEquilibriumConfig) -> tuple:
    """Two pairs per ``p``: the triggered Tit-for-tat and the Elastic."""
    pairs = []
    for p in config.p_values:
        adversary = ComponentSpec(MixedAdversary, {"p": float(p)}, seeded=True)
        pairs.append(
            StrategyPair(
                name=f"titfortat@p={p:g}",
                collector=ComponentSpec(
                    TitForTatCollector,
                    {
                        "t_th": config.t_th,
                        "trigger": ComponentSpec(
                            MixedStrategyTrigger,
                            {
                                "equilibrium_probability": float(p),
                                "redundancy": config.redundancy,
                            },
                        ),
                    },
                ),
                adversary=adversary,
                collector_name="titfortat",
                adversary_name=f"mixed(p={p:g})",
                tags={"p": float(p), "scheme": "titfortat"},
            )
        )
        pairs.append(
            StrategyPair(
                name=f"elastic@p={p:g}",
                collector=ComponentSpec(
                    ElasticCollector,
                    {"t_th": config.t_th, "k": config.elastic_k},
                ),
                adversary=adversary,
                collector_name="elastic",
                adversary_name=f"mixed(p={p:g})",
                tags={"p": float(p), "scheme": "elastic"},
            )
        )
    return tuple(pairs)


def nonequilibrium_plan(config: NonEquilibriumConfig) -> List:
    """The §VI-D sweep as grid-order specs (default reducer applies)."""
    grid = SweepGrid(
        pairs=_pairs(config),
        datasets=(config.dataset,),
        attack_ratios=(config.attack_ratio,),
        repetitions=config.repetitions,
        rounds=config.rounds,
        batch_size=config.batch_size,
        anchor="batch",
        # The default GameRecord reducer is summary-only: lean boards.
        store_retained=False,
        quality=ComponentSpec(TailMassEvaluator),
        judge=ComponentSpec(
            NoisyPositionJudge,
            {
                # greedy (0.90) is below the boundary, equilibrium (0.99)
                # above it
                "boundary": config.t_th + 0.005,
                "miss_rate": config.judge_miss_rate,
                "false_positive_rate": config.judge_false_positive_rate,
            },
            seeded=True,
        ),
        seed=config.seed,
    )
    return grid.expand()


def aggregate_nonequilibrium(
    config: NonEquilibriumConfig, records: Sequence
) -> List[NonEquilibriumRow]:
    """Fold grid-order :class:`GameRecord` cells into the Table III rows."""
    cap = config.rounds + 5  # the paper's never-terminated bookkeeping value
    grouped: dict = {}
    for record in records:
        grouped.setdefault((record["p"], record["scheme"]), []).append(record)

    rows: List[NonEquilibriumRow] = []
    for p in config.p_values:
        tft = grouped[(float(p), "titfortat")]
        elastic = grouped[(float(p), "elastic")]
        terminations = [
            cap if r.termination_round is None else r.termination_round
            for r in tft
        ]
        rows.append(
            NonEquilibriumRow(
                p=float(p),
                average_termination_rounds=float(np.mean(terminations)),
                titfortat_poison_fraction=float(
                    np.mean([r.poison_retained_fraction for r in tft])
                ),
                elastic_poison_fraction=float(
                    np.mean([r.poison_retained_fraction for r in elastic])
                ),
            )
        )
    return rows


def run_nonequilibrium(
    config: NonEquilibriumConfig, store: Optional[object] = None
) -> List[NonEquilibriumRow]:
    """Run the §VI-D sweep over the mixed-strategy parameter ``p``."""
    runner = SweepRunner(
        workers=config.workers, rep_batch=config.rep_batch, store=store
    )
    return aggregate_nonequilibrium(config, runner.run(nonequilibrium_plan(config)))
