"""Experiment runners regenerating every table and figure of the paper."""

from .classifiers import (
    LabelAwareRadialTrimmer,
    SOMConfig,
    SOMResult,
    SVMConfig,
    SVMResult,
    run_som_experiment,
    run_svm_experiment,
)
from .cost import (
    CostConfig,
    CostRow,
    aggregate_cost,
    cost_specs,
    elastic_trajectory,
    run_cost_analysis,
)
from .equilibrium import (
    EquilibriumCell,
    EquilibriumConfig,
    aggregate_kmeans,
    kmeans_plan,
    run_kmeans_experiment,
)
from .ldp_experiment import (
    LDP_SCHEMES,
    LDPCell,
    LDPConfig,
    aggregate_ldp,
    ldp_specs,
    run_ldp_experiment,
)
from .nonequilibrium import (
    NonEquilibriumConfig,
    NonEquilibriumRow,
    aggregate_nonequilibrium,
    nonequilibrium_plan,
    run_nonequilibrium,
)
from .reporting import format_table, format_value
from .schemes import SCHEMES, make_scheme, scheme_specs
from .tournament import (
    TournamentConfig,
    TournamentResult,
    aggregate_tournament,
    run_tournament,
    tournament_plan,
)

__all__ = [
    "SCHEMES",
    "make_scheme",
    "scheme_specs",
    "format_table",
    "format_value",
    "EquilibriumConfig",
    "EquilibriumCell",
    "kmeans_plan",
    "aggregate_kmeans",
    "run_kmeans_experiment",
    "SVMConfig",
    "SVMResult",
    "run_svm_experiment",
    "SOMConfig",
    "SOMResult",
    "run_som_experiment",
    "LabelAwareRadialTrimmer",
    "NonEquilibriumConfig",
    "NonEquilibriumRow",
    "nonequilibrium_plan",
    "aggregate_nonequilibrium",
    "run_nonequilibrium",
    "CostConfig",
    "CostRow",
    "cost_specs",
    "aggregate_cost",
    "elastic_trajectory",
    "run_cost_analysis",
    "LDPConfig",
    "LDPCell",
    "LDP_SCHEMES",
    "ldp_specs",
    "aggregate_ldp",
    "run_ldp_experiment",
    "TournamentConfig",
    "TournamentResult",
    "tournament_plan",
    "aggregate_tournament",
    "run_tournament",
]
