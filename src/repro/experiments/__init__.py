"""Experiment runners regenerating every table and figure of the paper."""

from .classifiers import (
    LabelAwareRadialTrimmer,
    SOMConfig,
    SOMResult,
    SVMConfig,
    SVMResult,
    run_som_experiment,
    run_svm_experiment,
)
from .cost import CostConfig, CostRow, elastic_trajectory, run_cost_analysis
from .equilibrium import EquilibriumCell, EquilibriumConfig, run_kmeans_experiment
from .ldp_experiment import LDPCell, LDPConfig, run_ldp_experiment
from .nonequilibrium import (
    NonEquilibriumConfig,
    NonEquilibriumRow,
    run_nonequilibrium,
)
from .reporting import format_table, format_value
from .schemes import SCHEMES, make_scheme, scheme_specs
from .tournament import TournamentConfig, TournamentResult, run_tournament

__all__ = [
    "SCHEMES",
    "make_scheme",
    "scheme_specs",
    "format_table",
    "format_value",
    "EquilibriumConfig",
    "EquilibriumCell",
    "run_kmeans_experiment",
    "SVMConfig",
    "SVMResult",
    "run_svm_experiment",
    "SOMConfig",
    "SOMResult",
    "run_som_experiment",
    "LabelAwareRadialTrimmer",
    "NonEquilibriumConfig",
    "NonEquilibriumRow",
    "run_nonequilibrium",
    "CostConfig",
    "CostRow",
    "elastic_trajectory",
    "run_cost_analysis",
    "LDPConfig",
    "LDPCell",
    "run_ldp_experiment",
    "TournamentConfig",
    "TournamentResult",
    "run_tournament",
]
