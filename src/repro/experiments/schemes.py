"""Scheme factory: the six §VI-A collector/adversary pairings.

Each scheme of the evaluation is a *pair* of strategies — the collector's
trimming policy together with the adversary behaviour the paper pits it
against:

========== ============================== =================================
scheme      collector                      adversary
========== ============================== =================================
groundtruth accept everything              no injection
ostrich     accept everything              fixed injection at the 99th pct
baseline0.9 static trim at 0.9             uniform injection on [0.9, 1]
baseline_s. static trim at ``T_th``        ideal attack at ``T_th - 1%``
titfortat   Algorithm 1 (soft/hard)        equilibrium injection at 99th
elastic_k   Algorithm 2 with strength k    elastic responder (§VI-A rules)
========== ============================== =================================
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.strategies import (
    AdversaryStrategy,
    CollectorStrategy,
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    JustBelowAdversary,
    NullAdversary,
    OstrichCollector,
    StaticCollector,
    TitForTatCollector,
    UniformRangeAdversary,
)

__all__ = ["SCHEMES", "make_scheme"]

#: Canonical scheme names, in the paper's plotting order.
SCHEMES = (
    "groundtruth",
    "ostrich",
    "baseline0.9",
    "baseline_static",
    "titfortat",
    "elastic0.1",
    "elastic0.5",
)


def make_scheme(
    name: str,
    t_th: float,
    seed: Optional[int] = None,
    elastic_rule: str = "paper",
) -> Tuple[CollectorStrategy, AdversaryStrategy]:
    """Instantiate the (collector, adversary) pair for a scheme.

    ``t_th`` is the headline threshold of the experiment (0.9, 0.95 or
    0.97 in the paper); ``seed`` controls randomized adversaries;
    ``elastic_rule`` selects the Elastic update variant (DESIGN.md §4).
    """
    key = name.strip().lower()
    if key == "groundtruth":
        return OstrichCollector(), NullAdversary()
    if key == "ostrich":
        return OstrichCollector(), FixedAdversary(0.99)
    if key == "baseline0.9":
        return StaticCollector(0.9), UniformRangeAdversary(0.9, 1.0, seed=seed)
    if key in ("baseline_static", "baselinestatic"):
        return StaticCollector(t_th), JustBelowAdversary(t_th)
    if key == "titfortat":
        return TitForTatCollector(t_th, trigger=None), FixedAdversary(0.99)
    if key.startswith("elastic"):
        try:
            k = float(key[len("elastic"):])
        except ValueError:
            raise ValueError(f"cannot parse elastic strength from {name!r}")
        collector = ElasticCollector(t_th, k, rule=elastic_rule)
        adversary = ElasticAdversary(t_th, k, rule=elastic_rule)
        return collector, adversary
    raise ValueError(f"unknown scheme {name!r}; options: {SCHEMES}")
