"""Scheme factory: the six §VI-A collector/adversary pairings.

Each scheme of the evaluation is a *pair* of strategies — the collector's
trimming policy together with the adversary behaviour the paper pits it
against:

========== ============================== =================================
scheme      collector                      adversary
========== ============================== =================================
groundtruth accept everything              no injection
ostrich     accept everything              fixed injection at the 99th pct
baseline0.9 static trim at 0.9             uniform injection on [0.9, 1]
baseline_s. static trim at ``T_th``        ideal attack at ``T_th - 1%``
titfortat   Algorithm 1 (soft/hard)        equilibrium injection at 99th
elastic_k   Algorithm 2 with strength k    elastic responder (§VI-A rules)
========== ============================== =================================
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.strategies import (
    AdversaryStrategy,
    CollectorStrategy,
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    JustBelowAdversary,
    NullAdversary,
    OstrichCollector,
    StaticCollector,
    TitForTatCollector,
    UniformRangeAdversary,
)
from ..runtime.spec import ComponentSpec

__all__ = ["SCHEMES", "make_scheme", "scheme_specs"]

#: Canonical scheme names, in the paper's plotting order.
SCHEMES = (
    "groundtruth",
    "ostrich",
    "baseline0.9",
    "baseline_static",
    "titfortat",
    "elastic0.1",
    "elastic0.5",
)


def scheme_specs(
    name: str,
    t_th: float,
    elastic_rule: str = "paper",
) -> Tuple[ComponentSpec, ComponentSpec]:
    """Picklable (collector, adversary) factory specs for a scheme.

    The sweep runtime builds a *fresh* pair per game cell from these
    recipes, so concurrent games never share mutable strategy state.
    Randomized components are flagged ``seeded`` and receive their
    per-game seed from the spec's derivation channels.
    """
    key = name.strip().lower()
    if key == "groundtruth":
        return ComponentSpec(OstrichCollector), ComponentSpec(NullAdversary)
    if key == "ostrich":
        return (
            ComponentSpec(OstrichCollector),
            ComponentSpec(FixedAdversary, {"percentile": 0.99}),
        )
    if key == "baseline0.9":
        return (
            ComponentSpec(StaticCollector, {"threshold": 0.9}),
            ComponentSpec(
                UniformRangeAdversary, {"low": 0.9, "high": 1.0}, seeded=True
            ),
        )
    if key in ("baseline_static", "baselinestatic"):
        return (
            ComponentSpec(StaticCollector, {"threshold": t_th}),
            ComponentSpec(JustBelowAdversary, {"initial_threshold": t_th}),
        )
    if key == "titfortat":
        return (
            ComponentSpec(TitForTatCollector, {"t_th": t_th, "trigger": None}),
            ComponentSpec(FixedAdversary, {"percentile": 0.99}),
        )
    if key.startswith("elastic"):
        try:
            k = float(key[len("elastic"):])
        except ValueError as exc:
            raise ValueError(
                f"cannot parse elastic strength from {name!r}"
            ) from exc
        return (
            ComponentSpec(
                ElasticCollector, {"t_th": t_th, "k": k, "rule": elastic_rule}
            ),
            ComponentSpec(
                ElasticAdversary, {"t_th": t_th, "k": k, "rule": elastic_rule}
            ),
        )
    raise ValueError(f"unknown scheme {name!r}; options: {SCHEMES}")


def make_scheme(
    name: str,
    t_th: float,
    seed: Optional[int] = None,
    elastic_rule: str = "paper",
) -> Tuple[CollectorStrategy, AdversaryStrategy]:
    """Instantiate the (collector, adversary) pair for a scheme.

    ``t_th`` is the headline threshold of the experiment (0.9, 0.95 or
    0.97 in the paper); ``seed`` controls randomized adversaries;
    ``elastic_rule`` selects the Elastic update variant (DESIGN.md §4).
    """
    collector_spec, adversary_spec = scheme_specs(name, t_th, elastic_rule)
    return collector_spec.build(seed), adversary_spec.build(seed)
