"""Standalone data-collector runtime (deployment-side of Fig. 3).

:class:`~repro.core.engine.CollectionGame` simulates *both* parties; this
module is the collector's half alone, for driving a strategy against a
**real** incoming stream where the adversary (if any) is part of the
data: bind a collector strategy, a trimmer and a quality evaluator, feed
raw batches to :meth:`DataCollector.collect`, and receive the retained
data while the strategy adapts round over round.

The injection position is unobservable on a real stream, so strategies
receive observations with ``injection_percentile=None`` — the Elastic
collector then uses its Algorithm 2 quality-feedback rule, and
Tit-for-tat triggers off the quality standard, exactly the §V
non-deterministic-utility operating mode.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.arrays import Array, ArrayLike
from ..core.quality import QualityEvaluator, TailMassEvaluator
from ..core.strategies.base import CollectorStrategy, RoundObservation
from ..core.trimming import Trimmer

__all__ = ["DataCollector"]


class DataCollector:
    """Round-wise collector runtime over raw (untrusted) batches.

    Parameters
    ----------
    strategy:
        Any :class:`~repro.core.strategies.base.CollectorStrategy`.
    trimmer:
        Trimming operator; fitted on ``reference`` for anchoring.
    reference:
        Clean calibration data — the public quality standard.
    quality_evaluator:
        Defaults to a :class:`~repro.core.quality.TailMassEvaluator`.
    betrayal_quality:
        Normalized-quality level above which a round is judged a
        betrayal for strategies that key off the judgement (mirror,
        generous, two-tats, triggers).
    """

    def __init__(
        self,
        strategy: CollectorStrategy,
        trimmer: Trimmer,
        reference: ArrayLike,
        quality_evaluator: Optional[QualityEvaluator] = None,
        betrayal_quality: float = 0.5,
    ) -> None:
        if not 0.0 <= betrayal_quality <= 1.0:
            raise ValueError("betrayal_quality must lie in [0, 1]")
        self.strategy = strategy
        self.trimmer = trimmer
        self.reference = np.asarray(reference, dtype=float)
        self.trimmer.fit_reference(self.reference)
        self.quality_evaluator = quality_evaluator or TailMassEvaluator()
        self.quality_evaluator.fit(self.reference)
        self._share_scores = self.quality_evaluator.accepts_scores(
            getattr(self.trimmer, "score_kind", None)
        )
        self.betrayal_quality = float(betrayal_quality)
        self.strategy.reset()
        self._round = 0
        self._last: Optional[RoundObservation] = None
        self._pending: Optional[float] = None

    @property
    def rounds_collected(self) -> int:
        """Number of batches processed so far."""
        return self._round

    def _next_threshold(self) -> float:
        """Compute-and-cache the next round's threshold.

        ``strategy.react`` may mutate strategy state (Elastic's
        ``_current``, trigger counters), so it must run exactly once per
        round: the first caller — property read or :meth:`collect` —
        computes it, and :meth:`collect` consumes the cached value.
        """
        if self._pending is None:
            if self._last is None:
                self._pending = float(self.strategy.first())
            else:
                self._pending = float(self.strategy.react(self._last))
        return self._pending

    @property
    def current_threshold(self) -> float:
        """The trimming percentile the next batch will receive.

        Side-effect free with respect to the round protocol: reading it
        any number of times leaves the retained data of the following
        :meth:`collect` unchanged.
        """
        return self._next_threshold()

    def collect(self, batch: ArrayLike) -> Array:
        """Trim one incoming batch and advance the strategy.

        Returns the retained rows/values.  The per-round threshold comes
        from the strategy's reaction to the previous round's public
        observation (quality score, betrayal judgement).
        """
        arr = np.asarray(batch, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot collect an empty batch")
        self._round += 1

        threshold = self._next_threshold()
        self._pending = None  # next round recomputes from the new state

        report = self.trimmer.trim(arr, threshold)
        # One scoring sweep per round: score and normalized quality come
        # from a single evaluate() call, reusing the trimmer's batch
        # scores when the score families are commensurable.
        shared = (
            report.scores if self._share_scores and report.scores is not None
            else None
        )
        observed_ratio, quality = self.quality_evaluator.evaluate(
            arr, scores=shared
        )
        self._last = RoundObservation(
            index=self._round,
            trim_percentile=float(threshold),
            injection_percentile=None,  # unobservable on a real stream
            quality=quality,
            observed_poison_ratio=observed_ratio,
            betrayal=quality > self.betrayal_quality,
        )
        return arr[report.kept]

    def reset(self) -> None:
        """Restart the strategy and round counter for a fresh stream."""
        self.strategy.reset()
        self._round = 0
        self._last = None
        self._pending = None
