"""The public board of the infinite collection game (Fig. 3, steps ① ⑥).

The board is the complete-information channel: the collector records every
round's retained data and the threshold she used, and the adversary can
access and verify them.  It is an append-only log of
:class:`~repro.core.strategies.base.RoundObservation` entries plus the
retained batches, giving both parties (and the experiment harness) a
consistent view of the game's history.

Long games and large sweep grids mostly consume the board through
*summary* reducers that never touch the per-round retained arrays; the
lean mode (``PublicBoard(store_retained=False)``) drops those payloads at
record time and keeps only running counts and aggregates, cutting peak
memory from O(rounds × batch) to O(rounds).

Columns
-------
Alongside the entry log the board maintains **append-only column
arrays** — one value per round for every public observation field and
ground-truth count.  Path queries (``GameResult.threshold_path()``,
``injection_path()``, ``to_records()``) and the aggregate fractions read
these columns directly instead of rebuilding Python list comprehensions
over observation objects on every call.  :class:`StackedBoard` is the
rep-batched counterpart used by
:class:`~repro.core.engine.BatchedCollectionGame`: it records ``(R,)``
column vectors per round for all R repetitions at once and slices out
per-rep :class:`PublicBoard` views (entry objects materialize lazily,
only when a consumer actually walks ``entries``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.arrays import Array
from ..core.strategies.base import RoundObservation

__all__ = [
    "BoardEntry",
    "BoardColumns",
    "ColumnarBoard",
    "PublicBoard",
    "StackedBoard",
]


@dataclass(frozen=True)
class BoardEntry:
    """One round's public record.

    ``retained`` is the untrimmed (kept) data the collector published
    (``None`` on a lean board, which keeps only its row count in
    ``n_retained``); ``observation`` the public per-round summary both
    parties strategize on; ``n_poison_retained``/``n_poison_injected``
    are ground-truth bookkeeping available to the experiment harness
    (not used by strategies, which only see the observation).
    """

    observation: RoundObservation
    retained: Optional[Array]
    n_collected: int
    n_poison_injected: int
    n_poison_retained: int
    n_retained: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_retained is None:
            if self.retained is None:
                raise ValueError(
                    "a lean entry (retained=None) must carry n_retained"
                )
            object.__setattr__(self, "n_retained", int(self.retained.shape[0]))


@dataclass(frozen=True)
class BoardColumns:
    """Per-round column arrays of a board (one entry per round).

    ``injection_percentile`` uses ``NaN`` where no poison was injected
    (the ``None`` of the observation object).  Arrays are read-only —
    they are shared with the board's internal cache.
    """

    index: Array                 # (T,) int, 1-based round numbers
    trim_percentile: Array       # (T,) float
    injection_percentile: Array  # (T,) float, NaN = no injection
    quality: Array               # (T,) float
    observed_poison_ratio: Array  # (T,) float
    betrayal: Array              # (T,) bool
    n_collected: Array           # (T,) int
    n_poison_injected: Array     # (T,) int
    n_poison_retained: Array     # (T,) int
    n_retained: Array            # (T,) int

    @property
    def rounds(self) -> int:
        """Number of recorded rounds."""
        return int(self.index.size)


_COLUMN_FIELDS = (
    "index",
    "trim_percentile",
    "injection_percentile",
    "quality",
    "observed_poison_ratio",
    "betrayal",
    "n_collected",
    "n_poison_injected",
    "n_poison_retained",
    "n_retained",
)

_COLUMN_DTYPES = {
    "index": np.int64,
    "betrayal": bool,
    "n_collected": np.int64,
    "n_poison_injected": np.int64,
    "n_poison_retained": np.int64,
    "n_retained": np.int64,
}


def _freeze(arr: Array) -> Array:
    arr.setflags(write=False)
    return arr


def _entry_row(entry: BoardEntry) -> Tuple[Any, ...]:
    obs = entry.observation
    return (
        obs.index,
        obs.trim_percentile,
        np.nan if obs.injection_percentile is None else obs.injection_percentile,
        obs.quality,
        obs.observed_poison_ratio,
        obs.betrayal,
        entry.n_collected,
        entry.n_poison_injected,
        entry.n_poison_retained,
        int(entry.n_retained),
    )


class PublicBoard:
    """Append-only public record of the collection game.

    ``store_retained=False`` selects the lean mode: recorded entries are
    stripped of their ``retained`` payload at record time, keeping only
    the per-round counts (``n_retained`` et al.) the aggregate queries
    need — peak memory drops from O(rounds × batch) to O(rounds).

    The board keeps append-only per-field column lists in sync with the
    entry log; :attr:`columns` stacks them into (cached, read-only)
    arrays so path and aggregate queries never iterate observation
    objects.  Boards sliced out of a :class:`StackedBoard`
    (:meth:`from_columns`) go the other way: they are born with columns
    and materialize :attr:`entries` lazily on first access.
    """

    def __init__(
        self,
        entries: Optional[Sequence[BoardEntry]] = None,
        store_retained: bool = True,
    ):
        self.store_retained = bool(store_retained)
        self._entries: Optional[List[BoardEntry]] = (
            list(entries) if entries is not None else []
        )
        self._col_lists = {name: [] for name in _COLUMN_FIELDS}
        for entry in self._entries:
            self._append_columns(entry)
        self._columns_cache: Optional[BoardColumns] = None
        # Payload of a lazily-entried, column-born board (see from_columns).
        self._source_retained: Optional[List[Array]] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_columns(
        cls,
        columns: BoardColumns,
        retained: Optional[Sequence[Array]] = None,
        store_retained: bool = True,
    ) -> "PublicBoard":
        """A board born from column arrays (one rep of a stacked game).

        ``retained`` optionally carries the per-round retained arrays;
        entry objects are only materialized when :attr:`entries` is
        first read, so summary consumers (column-based reducers, the
        aggregate fractions) never pay the per-round object cost.
        """
        if retained is not None and len(retained) != columns.rounds:
            raise ValueError("retained payload must carry one array per round")
        board = cls.__new__(cls)
        board.store_retained = bool(store_retained)
        board._entries = None
        board._col_lists = None  # rebuilt from the columns only on append
        board._columns_cache = columns
        board._source_retained = list(retained) if retained is not None else None
        return board

    # ------------------------------------------------------------------ #
    def _append_columns(self, entry: BoardEntry) -> None:
        if self._col_lists is None:  # column-born board, first append
            cols = self._columns_cache
            self._col_lists = {
                name: list(getattr(cols, name)) for name in _COLUMN_FIELDS
            }
        for name, value in zip(_COLUMN_FIELDS, _entry_row(entry), strict=False):
            self._col_lists[name].append(value)

    def _materialize_entries(self) -> List[BoardEntry]:
        """Build the entry log of a column-born board on first access."""
        entries: List[BoardEntry] = []
        cols = self.columns
        for t in range(cols.rounds):
            inj = cols.injection_percentile[t]
            retained = (
                self._source_retained[t]
                if self._source_retained is not None
                else None
            )
            entries.append(
                BoardEntry(
                    observation=RoundObservation(
                        index=int(cols.index[t]),
                        trim_percentile=float(cols.trim_percentile[t]),
                        injection_percentile=(
                            None if np.isnan(inj) else float(inj)
                        ),
                        quality=float(cols.quality[t]),
                        observed_poison_ratio=float(
                            cols.observed_poison_ratio[t]
                        ),
                        betrayal=bool(cols.betrayal[t]),
                    ),
                    retained=retained,
                    n_collected=int(cols.n_collected[t]),
                    n_poison_injected=int(cols.n_poison_injected[t]),
                    n_poison_retained=int(cols.n_poison_retained[t]),
                    n_retained=int(cols.n_retained[t]),
                )
            )
        self._entries = entries
        return entries

    # ------------------------------------------------------------------ #
    @property
    def entries(self) -> List[BoardEntry]:
        """The entry log (materialized on demand for column-born boards)."""
        if self._entries is None:
            return self._materialize_entries()
        return self._entries

    @property
    def columns(self) -> BoardColumns:
        """Stacked, read-only per-round column arrays (cached per append)."""
        if self._columns_cache is None:
            cols = self._col_lists
            self._columns_cache = BoardColumns(
                **{
                    name: _freeze(
                        np.asarray(cols[name], dtype=_COLUMN_DTYPES.get(name, float))
                    )
                    for name in _COLUMN_FIELDS
                }
            )
        return self._columns_cache

    def record(self, entry: BoardEntry) -> None:
        """Append a completed round's record."""
        entries = self.entries  # materializes a column-born board first
        expected = len(entries) + 1
        if entry.observation.index != expected:
            raise ValueError(
                f"round {entry.observation.index} recorded out of order "
                f"(expected {expected})"
            )
        if not self.store_retained and entry.retained is not None:
            entry = replace(entry, retained=None, n_retained=entry.n_retained)
        entries.append(entry)
        self._append_columns(entry)
        self._columns_cache = None

    def extend_columns(
        self,
        columns: dict[str, Sequence[Any]],
        retained: Optional[Sequence[Array]] = None,
    ) -> None:
        """Bulk-append per-round column values (deferred lockstep flush).

        ``columns`` maps every field of the board's column layout to a
        sequence of per-round values (``index`` included, absolute and
        contiguous with the existing log); ``retained`` carries the
        matching per-round retained arrays on a full board.  The board
        stays (or becomes) column-born: entry objects materialize lazily
        on the next :attr:`entries` access, so a flush never pays the
        per-round object cost the deferred rounds avoided.
        """
        added = len(columns["index"])
        if added == 0:
            return
        if int(columns["index"][0]) != len(self) + 1:
            raise ValueError(
                f"round {int(columns['index'][0])} appended out of order "
                f"(expected {len(self) + 1})"
            )
        if self._col_lists is None:  # column-born board, first append
            cols = self._columns_cache
            self._col_lists = {
                name: list(getattr(cols, name)) for name in _COLUMN_FIELDS
            }
        payload: Optional[List[Array]] = None
        if self.store_retained:
            if retained is None or len(retained) != added:
                raise ValueError(
                    "a full board needs one retained array per appended round"
                )
            if self._entries is not None:
                payload = [e.retained for e in self._entries]
            elif self._source_retained is not None:
                payload = list(self._source_retained)
            else:
                payload = []
            if len(payload) != len(self):
                raise ValueError(
                    "board's retained payload is incomplete; cannot extend"
                )
            payload.extend(retained)
        for name in _COLUMN_FIELDS:
            values = columns[name]
            if len(values) != added:
                raise ValueError(
                    f"column {name!r} must carry {added} rows, "
                    f"got {len(values)}"
                )
            self._col_lists[name].extend(values)
        self._entries = None
        self._source_retained = payload
        self._columns_cache = None

    def __len__(self) -> int:
        if self._col_lists is None:
            return self._columns_cache.rounds
        return len(self._col_lists["index"])

    @property
    def last(self) -> Optional[BoardEntry]:
        """Most recent entry, or ``None`` before round 1."""
        entries = self.entries
        return entries[-1] if entries else None

    @property
    def observations(self) -> List[RoundObservation]:
        """All public round observations, in order."""
        return [e.observation for e in self.entries]

    def retained_data(self) -> Array:
        """All retained data concatenated across rounds.

        This is what downstream analytics (k-means, SVM, SOM, mean
        estimation) consume — the dataset that actually survived the
        game.
        """
        if len(self) == 0:
            raise ValueError("board is empty")
        if self._entries is None and self._source_retained is not None:
            return np.concatenate(self._source_retained, axis=0)
        if any(e.retained is None for e in self.entries):
            raise ValueError(
                "board is lean (store_retained=False): per-round retained "
                "arrays were not stored; replay the game with "
                "store_retained=True to collect them"
            )
        return np.concatenate([e.retained for e in self.entries], axis=0)

    def poison_retained_fraction(self) -> float:
        """Ground truth: fraction of retained points that are poison.

        The 'untrimmed poison values in the remaining data' metric of
        Table III.
        """
        cols = self.columns
        kept = int(np.sum(cols.n_retained))
        if kept == 0:
            return 0.0
        return int(np.sum(cols.n_poison_retained)) / kept

    def trimmed_fraction(self) -> float:
        """Overall fraction of collected data that was trimmed away."""
        cols = self.columns
        collected = int(np.sum(cols.n_collected))
        if collected == 0:
            return 0.0
        return 1.0 - int(np.sum(cols.n_retained)) / collected


class StackedBoard:
    """Per-round column stacks for R lockstep repetitions of one game.

    The batched engine records one ``(R,)`` vector per public field per
    round — no per-rep Python objects exist during play.  After the game
    :meth:`rep_board` slices rep ``r``'s columns into a lazy
    :class:`PublicBoard`, and the aggregate queries
    (:meth:`poison_retained_fractions`, :meth:`trimmed_fractions`)
    answer for all reps at once.

    ``store_retained=True`` additionally keeps, per round, the list of R
    per-rep retained arrays (exactly what R solo full boards would have
    stored); lean mode keeps counts only.
    """

    def __init__(self, n_reps: int, store_retained: bool = True):
        if n_reps < 1:
            raise ValueError("a stacked board needs at least one rep")
        self.n_reps = int(n_reps)
        self.store_retained = bool(store_retained)
        self._rows = {name: [] for name in _COLUMN_FIELDS if name != "index"}
        self._retained: Optional[List[List[Array]]] = (
            [] if self.store_retained else None
        )
        self._stacked_cache: Optional[dict[str, Any]] = None

    def record_round(
        self,
        *,
        trim_percentile: Array,
        injection_percentile: Array,
        quality: Array,
        observed_poison_ratio: Array,
        betrayal: Array,
        n_collected: Array,
        n_poison_injected: Array,
        n_poison_retained: Array,
        n_retained: Array,
        retained: Optional[List[Array]] = None,
    ) -> None:
        """Append one completed round's ``(R,)`` column vectors."""
        row = {
            "trim_percentile": trim_percentile,
            "injection_percentile": injection_percentile,
            "quality": quality,
            "observed_poison_ratio": observed_poison_ratio,
            "betrayal": betrayal,
            "n_collected": n_collected,
            "n_poison_injected": n_poison_injected,
            "n_poison_retained": n_poison_retained,
            "n_retained": n_retained,
        }
        for name, values in row.items():
            arr = np.asarray(values)
            if arr.shape != (self.n_reps,):
                raise ValueError(
                    f"column {name!r} must be shaped ({self.n_reps},), "
                    f"got {arr.shape}"
                )
            self._rows[name].append(arr)
        if self.store_retained:
            if retained is None or len(retained) != self.n_reps:
                raise ValueError(
                    "a full stacked board needs one retained array per rep"
                )
            self._retained.append(list(retained))
        self._stacked_cache = None

    def __len__(self) -> int:
        return len(self._rows["trim_percentile"])

    @property
    def n_rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self)

    def _stacked(self) -> dict[str, Any]:
        """(T, R) arrays per field, cached until the next record."""
        if self._stacked_cache is None:
            self._stacked_cache = {
                name: np.asarray(rows, dtype=_COLUMN_DTYPES.get(name, float))
                for name, rows in self._rows.items()
            }
        return self._stacked_cache

    def rep_columns(self, rep: int) -> BoardColumns:
        """Rep ``rep``'s per-round columns as a :class:`BoardColumns`."""
        if not 0 <= rep < self.n_reps:
            raise IndexError(f"rep {rep} out of range (R={self.n_reps})")
        stacked = self._stacked()
        rounds = len(self)
        fields = {"index": _freeze(np.arange(1, rounds + 1, dtype=np.int64))}
        for name, arr in stacked.items():
            column = arr[:, rep].copy() if rounds else arr.reshape(0)
            fields[name] = _freeze(column)
        return BoardColumns(**fields)

    def rep_board(self, rep: int) -> PublicBoard:
        """Rep ``rep``'s game as a (lazily-entried) :class:`PublicBoard`."""
        retained = (
            [row[rep] for row in self._retained]
            if self._retained is not None
            else None
        )
        return PublicBoard.from_columns(
            self.rep_columns(rep),
            retained=retained,
            store_retained=self.store_retained,
        )

    def poison_retained_fractions(self) -> Array:
        """(R,) ground-truth poison fractions of the retained data."""
        stacked = self._stacked()
        if not len(self):
            return np.zeros(self.n_reps)
        kept = stacked["n_retained"].sum(axis=0)
        poison = stacked["n_poison_retained"].sum(axis=0)
        return np.where(kept == 0, 0.0, poison / np.maximum(kept, 1))

    def trimmed_fractions(self) -> Array:
        """(R,) overall trimmed fractions."""
        stacked = self._stacked()
        if not len(self):
            return np.zeros(self.n_reps)
        collected = stacked["n_collected"].sum(axis=0)
        kept = stacked["n_retained"].sum(axis=0)
        return np.where(
            collected == 0, 0.0, 1.0 - kept / np.maximum(collected, 1)
        )


class ColumnarBoard(StackedBoard):
    """Deferred-round sink for one lockstep service cohort.

    While a cohort stays in lockstep the multiplexer records one ``(L,)``
    row-batch per fused round here instead of appending to every member's
    :class:`PublicBoard`.  Member sessions :meth:`attach` with their lane
    index and absorb their pending rows wholesale — via
    ``PublicBoard.extend_columns`` — only when the cohort is invalidated
    (solo escape, eviction/snapshot, ``result``/``close``, or a lane
    rebuild).  ``sync`` runs exactly once, at :meth:`flush_all`, to write
    the lockstep lane state (strategy counters, injector RNG positions)
    back onto the member sessions' component instances before the pending
    rows become authoritative.

    ``start_index`` is the absolute round index the attached sessions had
    when the sink was created; row ``t`` of the sink is absolute round
    ``start_index + t + 1``.
    """

    def __init__(
        self,
        n_lanes: int,
        store_retained: bool = True,
        start_index: int = 0,
        sync: Optional[Callable[[], None]] = None,
    ) -> None:
        super().__init__(n_lanes, store_retained)
        self.start_index = int(start_index)
        self._sync = sync
        self._attached: List[Tuple[Any, int, int]] = []
        self.flushed = False

    def attach(self, session: Any, lane: int) -> None:
        """Register a member session for flush-time row absorption."""
        self._attached.append((session, int(lane), len(self)))

    def record_round(self, **kwargs) -> None:
        if self.flushed:
            raise RuntimeError("cannot record into a flushed sink")
        super().record_round(**kwargs)

    def record_decision(self, decision: Any) -> None:
        """Append one fused round from a ``BatchedRoundDecision``."""
        self.record_round(
            trim_percentile=decision.threshold,
            injection_percentile=decision.injection_percentile,
            quality=decision.quality,
            observed_poison_ratio=decision.observed_poison_ratio,
            betrayal=decision.betrayal,
            n_collected=decision.n_collected,
            n_poison_injected=decision.n_poison_injected,
            n_poison_retained=decision.n_poison_retained,
            n_retained=decision.n_retained,
            retained=decision.retained if self.store_retained else None,
        )

    def lane_rows(self, lane: int, base: int) -> Tuple[dict[str, List[Any]], Optional[List[Array]]]:
        """Lane ``lane``'s rows from ``base`` on, as per-field lists.

        The index column is absolute (``start_index``-offset) so the
        receiving board can validate contiguity with its existing log.
        """
        rounds = len(self)
        first = self.start_index + base + 1
        columns = {
            "index": list(range(first, self.start_index + rounds + 1))
        }
        stacked = self._stacked()
        for name in _COLUMN_FIELDS:
            if name == "index":
                continue
            columns[name] = list(stacked[name][base:, lane])
        retained = (
            [row[lane] for row in self._retained[base:]]
            if self._retained is not None
            else None
        )
        return columns, retained

    def flush_all(self) -> None:
        """Sync lane state once, then flush every attached session."""
        if self.flushed:
            return
        self.flushed = True
        if self._sync is not None:
            self._sync()
        attached, self._attached = self._attached, []
        for session, lane, base in attached:
            session._absorb_sink_rows(self, lane, base)
