"""The public board of the infinite collection game (Fig. 3, steps ① ⑥).

The board is the complete-information channel: the collector records every
round's retained data and the threshold she used, and the adversary can
access and verify them.  It is an append-only log of
:class:`~repro.core.strategies.base.RoundObservation` entries plus the
retained batches, giving both parties (and the experiment harness) a
consistent view of the game's history.

Long games and large sweep grids mostly consume the board through
*summary* reducers that never touch the per-round retained arrays; the
lean mode (``PublicBoard(store_retained=False)``) drops those payloads at
record time and keeps only running counts and aggregates, cutting peak
memory from O(rounds × batch) to O(rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from ..core.strategies.base import RoundObservation

__all__ = ["BoardEntry", "PublicBoard"]


@dataclass(frozen=True)
class BoardEntry:
    """One round's public record.

    ``retained`` is the untrimmed (kept) data the collector published
    (``None`` on a lean board, which keeps only its row count in
    ``n_retained``); ``observation`` the public per-round summary both
    parties strategize on; ``n_poison_retained``/``n_poison_injected``
    are ground-truth bookkeeping available to the experiment harness
    (not used by strategies, which only see the observation).
    """

    observation: RoundObservation
    retained: Optional[np.ndarray]
    n_collected: int
    n_poison_injected: int
    n_poison_retained: int
    n_retained: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_retained is None:
            if self.retained is None:
                raise ValueError(
                    "a lean entry (retained=None) must carry n_retained"
                )
            object.__setattr__(self, "n_retained", int(self.retained.shape[0]))


@dataclass
class PublicBoard:
    """Append-only public record of the collection game.

    ``store_retained=False`` selects the lean mode: recorded entries are
    stripped of their ``retained`` payload at record time, keeping only
    the per-round counts (``n_retained`` et al.) the aggregate queries
    need — peak memory drops from O(rounds × batch) to O(rounds).
    """

    entries: List[BoardEntry] = field(default_factory=list)
    store_retained: bool = True

    def record(self, entry: BoardEntry) -> None:
        """Append a completed round's record."""
        expected = len(self.entries) + 1
        if entry.observation.index != expected:
            raise ValueError(
                f"round {entry.observation.index} recorded out of order "
                f"(expected {expected})"
            )
        if not self.store_retained and entry.retained is not None:
            entry = replace(entry, retained=None, n_retained=entry.n_retained)
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def last(self) -> Optional[BoardEntry]:
        """Most recent entry, or ``None`` before round 1."""
        return self.entries[-1] if self.entries else None

    @property
    def observations(self) -> List[RoundObservation]:
        """All public round observations, in order."""
        return [e.observation for e in self.entries]

    def retained_data(self) -> np.ndarray:
        """All retained data concatenated across rounds.

        This is what downstream analytics (k-means, SVM, SOM, mean
        estimation) consume — the dataset that actually survived the
        game.
        """
        if not self.entries:
            raise ValueError("board is empty")
        if any(e.retained is None for e in self.entries):
            raise ValueError(
                "board is lean (store_retained=False): per-round retained "
                "arrays were not stored; replay the game with "
                "store_retained=True to collect them"
            )
        return np.concatenate([e.retained for e in self.entries], axis=0)

    def poison_retained_fraction(self) -> float:
        """Ground truth: fraction of retained points that are poison.

        The 'untrimmed poison values in the remaining data' metric of
        Table III.
        """
        kept = sum(e.n_retained for e in self.entries)
        if kept == 0:
            return 0.0
        poison = sum(e.n_poison_retained for e in self.entries)
        return poison / kept

    def trimmed_fraction(self) -> float:
        """Overall fraction of collected data that was trimmed away."""
        collected = sum(e.n_collected for e in self.entries)
        if collected == 0:
            return 0.0
        kept = sum(e.n_retained for e in self.entries)
        return 1.0 - kept / collected
