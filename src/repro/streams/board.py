"""The public board of the infinite collection game (Fig. 3, steps ① ⑥).

The board is the complete-information channel: the collector records every
round's retained data and the threshold she used, and the adversary can
access and verify them.  It is an append-only log of
:class:`~repro.core.strategies.base.RoundObservation` entries plus the
retained batches, giving both parties (and the experiment harness) a
consistent view of the game's history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.strategies.base import RoundObservation

__all__ = ["BoardEntry", "PublicBoard"]


@dataclass(frozen=True)
class BoardEntry:
    """One round's public record.

    ``retained`` is the untrimmed (kept) data the collector published;
    ``observation`` the public per-round summary both parties strategize
    on; ``n_poison_retained``/``n_poison_injected`` are ground-truth
    bookkeeping available to the experiment harness (not used by
    strategies, which only see the observation).
    """

    observation: RoundObservation
    retained: np.ndarray
    n_collected: int
    n_poison_injected: int
    n_poison_retained: int


@dataclass
class PublicBoard:
    """Append-only public record of the collection game."""

    entries: List[BoardEntry] = field(default_factory=list)

    def record(self, entry: BoardEntry) -> None:
        """Append a completed round's record."""
        expected = len(self.entries) + 1
        if entry.observation.index != expected:
            raise ValueError(
                f"round {entry.observation.index} recorded out of order "
                f"(expected {expected})"
            )
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def last(self) -> Optional[BoardEntry]:
        """Most recent entry, or ``None`` before round 1."""
        return self.entries[-1] if self.entries else None

    @property
    def observations(self) -> List[RoundObservation]:
        """All public round observations, in order."""
        return [e.observation for e in self.entries]

    def retained_data(self) -> np.ndarray:
        """All retained data concatenated across rounds.

        This is what downstream analytics (k-means, SVM, SOM, mean
        estimation) consume — the dataset that actually survived the
        game.
        """
        if not self.entries:
            raise ValueError("board is empty")
        return np.concatenate([e.retained for e in self.entries], axis=0)

    def poison_retained_fraction(self) -> float:
        """Ground truth: fraction of retained points that are poison.

        The 'untrimmed poison values in the remaining data' metric of
        Table III.
        """
        kept = sum(e.retained.shape[0] for e in self.entries)
        if kept == 0:
            return 0.0
        poison = sum(e.n_poison_retained for e in self.entries)
        return poison / kept

    def trimmed_fraction(self) -> float:
        """Overall fraction of collected data that was trimmed away."""
        collected = sum(e.n_collected for e in self.entries)
        if collected == 0:
            return 0.0
        kept = sum(e.retained.shape[0] for e in self.entries)
        return 1.0 - kept / collected
