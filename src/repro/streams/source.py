"""Benign data stream sources (Fig. 3, step ③).

The collection game is played over a data stream with a fixed number of
samples per round.  Sources wrap a dataset (or a generator) and hand the
engine one benign batch per round; users of the stream never mutate the
backing data.

Rep lanes
---------
The batched replication engine
(:class:`~repro.core.engine.BatchedCollectionGame`) plays the R
repetitions of one sweep cell in lockstep, which needs R *independent*
draw sequences from one source object.  Passing a **sequence of seeds**
instead of a single seed puts a source into *rep-lane* mode: it keeps
one :class:`numpy.random.Generator` (plus epoch order and cursor) per
lane, and :meth:`StreamSource.next_batches` returns the next round's
benign batches stacked along a new leading rep axis, shape
``(R, batch_size, ...)``.  Each lane's draw sequence is byte-identical
to a standalone source constructed with that lane's seed — the contract
the batched engine's per-rep reproducibility relies on.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from ..core.arrays import Array, ArrayLike
from ..core.strategies.base import rng_state, set_rng_state

__all__ = ["StreamSource", "ArrayStream", "GeneratorStream"]


def _lane_seeds(
    seed: Any,
) -> tuple[Optional[Any], Optional[List[Any]]]:
    """Split a seed argument into (single_seed, lane_seeds)."""
    if isinstance(seed, (list, tuple)):
        if len(seed) == 0:
            raise ValueError("rep-lane mode needs at least one seed")
        return None, list(seed)
    return seed, None


class StreamSource:
    """Interface: one benign batch per call to :meth:`next_batch`.

    Sources constructed with a sequence of seeds run in *rep-lane* mode
    and serve :meth:`next_batches` instead (see module docstring).
    """

    @property
    def lanes(self) -> Optional[int]:
        """Number of rep lanes, or ``None`` for a single-stream source."""
        return None

    def reset(self) -> None:
        """Rewind the stream to its initial state."""

    def next_batch(self) -> Array:
        """The next round's benign batch (1-D values or 2-D rows)."""
        raise NotImplementedError

    def next_batches(self) -> Array:
        """One round's batches for every rep lane, stacked ``(R, batch, ...)``.

        Only available in rep-lane mode; each lane advances exactly as a
        standalone source seeded with that lane's seed would.
        """
        raise NotImplementedError(
            "next_batches() requires a rep-lane source (construct with a "
            "sequence of seeds, one per repetition)"
        )

    def export_state(self) -> dict[str, Any]:
        """Mutable stream position (cursor/RNG) as a plain-data dict.

        Mirrors the strategy state-export contract: ``reset()`` followed
        by ``import_state(state)`` resumes the draw sequence exactly
        where :meth:`export_state` captured it.  Sources without mutable
        state inherit this empty default.
        """
        return {}

    def import_state(self, state: dict[str, Any]) -> None:
        """Restore a stream position captured by :meth:`export_state`."""


class ArrayStream(StreamSource):
    """Replayable stream over a fixed array.

    Each round draws ``batch_size`` rows.  With ``shuffle=True`` (the
    default) rows are sampled without replacement per epoch and the
    epoch order is reshuffled when exhausted, so an arbitrary number of
    rounds can be served from a finite dataset — the paper's "streaming
    process with a fixed number of samples gathered in each round"
    (§IV-B).

    ``seed`` may be a single seed (one stream) or a sequence of seeds
    (rep-lane mode: one independent generator/order/cursor per lane,
    served through :meth:`next_batches`).
    """

    def __init__(
        self,
        data: ArrayLike,
        batch_size: int,
        shuffle: bool = True,
        seed: Any = None,
    ) -> None:
        arr = np.asarray(data, dtype=float)
        if arr.ndim not in (1, 2) or arr.shape[0] == 0:
            raise ValueError("data must be a non-empty 1-D or 2-D array")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_size > arr.shape[0]:
            raise ValueError("batch_size exceeds the dataset size")
        self._data = arr
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self._seed, self._lane_seeds = _lane_seeds(seed)
        self.reset()

    @property
    def lanes(self) -> Optional[int]:
        return None if self._lane_seeds is None else len(self._lane_seeds)

    def _fresh_lane(self, seed: Any) -> List[Any]:
        rng = np.random.default_rng(seed)
        order = np.arange(self._data.shape[0])
        if self.shuffle:
            rng.shuffle(order)
        return [rng, order, 0]  # rng, epoch order, cursor

    def reset(self) -> None:
        if self._lane_seeds is None:
            self._rng, self._order, self._cursor = self._fresh_lane(self._seed)
        else:
            self._lane_state = [self._fresh_lane(s) for s in self._lane_seeds]

    def _lane_dict(self, state: List[Any]) -> dict[str, Any]:
        rng, order, cursor = state
        return {
            "rng": rng_state(rng),
            "order": np.asarray(order).copy(),
            "cursor": int(cursor),
        }

    def _restore_lane(self, state: List[Any], lane: dict[str, Any]) -> None:
        set_rng_state(state[0], lane["rng"])
        state[1] = np.asarray(lane["order"], dtype=np.int64).copy()
        state[2] = int(lane["cursor"])

    def export_state(self) -> dict[str, Any]:
        if self._lane_seeds is None:
            return self._lane_dict([self._rng, self._order, self._cursor])
        return {"lanes": [self._lane_dict(s) for s in self._lane_state]}

    def import_state(self, state: dict[str, Any]) -> None:
        if self._lane_seeds is None:
            lane_state = [self._rng, self._order, self._cursor]
            self._restore_lane(lane_state, state)
            self._rng, self._order, self._cursor = lane_state
            return
        lanes = state["lanes"]
        if len(lanes) != len(self._lane_state):
            raise ValueError(
                f"state carries {len(lanes)} lanes, stream has "
                f"{len(self._lane_state)}"
            )
        for lane_state, lane in zip(self._lane_state, lanes, strict=False):
            self._restore_lane(lane_state, lane)

    def _next_index(self, state: List[Any]) -> Array:
        rng, order, cursor = state
        if cursor + self.batch_size > self._data.shape[0]:
            if self.shuffle:
                rng.shuffle(order)
            cursor = 0
        idx = order[cursor : cursor + self.batch_size]
        state[2] = cursor + self.batch_size
        return idx

    def next_batch(self) -> Array:
        if self._lane_seeds is not None:
            raise RuntimeError(
                "this stream runs in rep-lane mode; use next_batches()"
            )
        state = [self._rng, self._order, self._cursor]
        idx = self._next_index(state)
        self._cursor = state[2]
        # Fancy indexing already materializes a fresh array — callers can
        # never corrupt the backing dataset through the returned batch.
        return self._data[idx]

    def next_batches(self) -> Array:
        if self._lane_seeds is None:
            return super().next_batches()
        return np.stack(
            [self._data[self._next_index(state)] for state in self._lane_state]
        )


class GeneratorStream(StreamSource):
    """Stream backed by a callable ``factory(rng, batch_size) -> array``.

    Supports genuinely infinite streams (e.g. the synthetic Taxi
    generator) without materializing the full dataset.  As with
    :class:`ArrayStream`, a sequence of seeds selects rep-lane mode with
    one generator per lane.
    """

    def __init__(
        self,
        factory: Callable[[np.random.Generator, int], Array],
        batch_size: int,
        seed: Any = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._factory = factory
        self.batch_size = int(batch_size)
        self._seed, self._lane_seeds = _lane_seeds(seed)
        self.reset()

    @property
    def lanes(self) -> Optional[int]:
        return None if self._lane_seeds is None else len(self._lane_seeds)

    def reset(self) -> None:
        if self._lane_seeds is None:
            self._rng = np.random.default_rng(self._seed)
        else:
            self._lane_rngs = [np.random.default_rng(s) for s in self._lane_seeds]

    def export_state(self) -> dict[str, Any]:
        if self._lane_seeds is None:
            return {"rng": rng_state(self._rng)}
        return {"lanes": [{"rng": rng_state(rng)} for rng in self._lane_rngs]}

    def import_state(self, state: dict[str, Any]) -> None:
        if self._lane_seeds is None:
            set_rng_state(self._rng, state["rng"])
            return
        lanes = state["lanes"]
        if len(lanes) != len(self._lane_rngs):
            raise ValueError(
                f"state carries {len(lanes)} lanes, stream has "
                f"{len(self._lane_rngs)}"
            )
        for rng, lane in zip(self._lane_rngs, lanes, strict=False):
            set_rng_state(rng, lane["rng"])

    def _draw(self, rng: np.random.Generator) -> Array:
        batch = np.asarray(self._factory(rng, self.batch_size), dtype=float)
        if batch.shape[0] != self.batch_size:
            raise ValueError(
                f"factory returned {batch.shape[0]} rows, expected {self.batch_size}"
            )
        return batch

    def next_batch(self) -> Array:
        if self._lane_seeds is not None:
            raise RuntimeError(
                "this stream runs in rep-lane mode; use next_batches()"
            )
        return self._draw(self._rng)

    def next_batches(self) -> Array:
        if self._lane_seeds is None:
            return super().next_batches()
        return np.stack([self._draw(rng) for rng in self._lane_rngs])
