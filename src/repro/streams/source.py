"""Benign data stream sources (Fig. 3, step ③).

The collection game is played over a data stream with a fixed number of
samples per round.  Sources wrap a dataset (or a generator) and hand the
engine one benign batch per round; users of the stream never mutate the
backing data.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = ["StreamSource", "ArrayStream", "GeneratorStream"]


class StreamSource:
    """Interface: one benign batch per call to :meth:`next_batch`."""

    def reset(self) -> None:
        """Rewind the stream to its initial state."""

    def next_batch(self) -> np.ndarray:
        """The next round's benign batch (1-D values or 2-D rows)."""
        raise NotImplementedError


class ArrayStream(StreamSource):
    """Replayable stream over a fixed array.

    Each round draws ``batch_size`` rows.  With ``shuffle=True`` (the
    default) rows are sampled without replacement per epoch and the
    epoch order is reshuffled when exhausted, so an arbitrary number of
    rounds can be served from a finite dataset — the paper's "streaming
    process with a fixed number of samples gathered in each round"
    (§IV-B).
    """

    def __init__(
        self,
        data,
        batch_size: int,
        shuffle: bool = True,
        seed: Optional[int] = None,
    ):
        arr = np.asarray(data, dtype=float)
        if arr.ndim not in (1, 2) or arr.shape[0] == 0:
            raise ValueError("data must be a non-empty 1-D or 2-D array")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_size > arr.shape[0]:
            raise ValueError("batch_size exceeds the dataset size")
        self._data = arr
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._order = np.arange(arr.shape[0])
        self._cursor = 0
        if self.shuffle:
            self._rng.shuffle(self._order)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._order = np.arange(self._data.shape[0])
        self._cursor = 0
        if self.shuffle:
            self._rng.shuffle(self._order)

    def next_batch(self) -> np.ndarray:
        n = self._data.shape[0]
        if self._cursor + self.batch_size > n:
            if self.shuffle:
                self._rng.shuffle(self._order)
            self._cursor = 0
        idx = self._order[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return self._data[idx].copy()


class GeneratorStream(StreamSource):
    """Stream backed by a callable ``factory(rng, batch_size) -> array``.

    Supports genuinely infinite streams (e.g. the synthetic Taxi
    generator) without materializing the full dataset.
    """

    def __init__(
        self,
        factory: Callable[[np.random.Generator, int], np.ndarray],
        batch_size: int,
        seed: Optional[int] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._factory = factory
        self.batch_size = int(batch_size)
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)

    def next_batch(self) -> np.ndarray:
        batch = np.asarray(self._factory(self._rng, self.batch_size), dtype=float)
        if batch.shape[0] != self.batch_size:
            raise ValueError(
                f"factory returned {batch.shape[0]} rows, expected {self.batch_size}"
            )
        return batch
