"""Streaming substrate: sources, poison injection, and the public board."""

from .board import BoardEntry, PublicBoard
from .collector import DataCollector
from .injection import PoisonInjector
from .source import ArrayStream, GeneratorStream, StreamSource

__all__ = [
    "BoardEntry",
    "PublicBoard",
    "DataCollector",
    "PoisonInjector",
    "StreamSource",
    "ArrayStream",
    "GeneratorStream",
]
