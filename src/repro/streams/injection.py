"""Poison-value materialization (Fig. 3, step ②).

Adversary strategies decide a *percentile position*; this module turns the
position into concrete poison points relative to the round's benign batch.
Two placement modes are provided:

* ``mode="quantile"`` — 1-D batches receive the empirical quantile of the
  batch at the chosen percentile; 2-D batches receive the per-feature
  quantile *corner* (every feature at its own q-quantile).
* ``mode="radial"`` (default for 2-D) — the poison is placed along the
  upper-tail corner *direction* but scaled so its **radial score**
  (distance from the coordinate-wise median — exactly what
  :class:`~repro.core.trimming.RadialTrimmer` measures) equals the batch's
  radial-score quantile at the chosen percentile.  This makes injection
  percentiles and trimming percentiles live on the same scale in any
  dimension, so the game-theoretic percentile algebra of §VI-A carries
  over exactly (see DESIGN.md §4).  For 1-D input it reduces to the plain
  quantile placement on the upper tail.

A thin uniform jitter band spreads colluding Sybil values over
``[q, q + jitter]`` so they do not collapse onto a single tied value,
which would make percentile trimming degenerate.

The number of poison points follows the attack ratio: ``round(ratio · n)``
poison values accompany ``n`` benign ones, i.e. the adversary controls a
``ratio/(1+ratio)`` fraction of the round's traffic.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from ..core.arrays import Array, ArrayLike
from ..core.strategies.base import rng_state, set_rng_state

__all__ = ["PoisonInjector", "BatchedInjector", "LanePositionServer"]

_MODES = ("quantile", "radial")


class PoisonInjector:
    """Materializes poison batches at percentile positions.

    Parameters
    ----------
    attack_ratio:
        Poison-to-benign count ratio per round (``0.2`` = one poison value
        per five benign).
    jitter:
        Width of the percentile band the poison is spread over, e.g.
        ``0.01`` spreads Sybil values uniformly over ``[q, q + 0.01]``
        (clipped at 1.0).  ``0.0`` places all poison exactly at the
        quantile.
    mode:
        ``"radial"`` (default) or ``"quantile"`` — see module docstring.
        The modes coincide for 1-D data.
    seed:
        RNG seed for the jitter draws.
    """

    def __init__(
        self,
        attack_ratio: float,
        jitter: float = 0.01,
        mode: str = "radial",
        seed: Optional[int] = None,
    ):
        if attack_ratio < 0.0:
            raise ValueError("attack_ratio must be non-negative")
        if jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        self.attack_ratio = float(attack_ratio)
        self.jitter = float(jitter)
        self.mode = mode
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._ref_center: Optional[Array] = None
        self._ref_scores: Optional[Array] = None
        self._ref_values: Optional[Array] = None
        self._ref_corner: Optional[Array] = None

    def fit_reference(self, reference: ArrayLike) -> "PoisonInjector":
        """Calibrate percentile positions on the public reference.

        The white-box adversary knows the collector's public quality
        standard (§III-A), so it can place poison against the *reference*
        score quantiles instead of the noisy per-batch estimates — making
        the percentile coordinates of injection and (reference-anchored)
        trimming exactly commensurable.
        """
        arr = np.asarray(reference, dtype=float)
        if arr.size == 0:
            raise ValueError("reference must be non-empty")
        if arr.ndim == 1:
            self._ref_values = np.sort(arr)
            self._ref_center = None
            self._ref_scores = None
            self._ref_corner = None
        elif arr.ndim == 2:
            self._ref_center = np.median(arr, axis=0)
            self._ref_scores = np.linalg.norm(arr - self._ref_center, axis=1)
            self._ref_corner = np.quantile(arr, 0.99, axis=0)
            self._ref_values = None
        else:
            raise ValueError("reference must be 1-D or 2-D")
        return self

    def reset(self) -> None:
        """Rewind the jitter stream so a reused injector replays identically."""
        self._rng = np.random.default_rng(self._seed)

    def export_state(self) -> dict[str, Any]:
        """The jitter Generator's bit-state (session snapshot contract)."""
        return {"rng": rng_state(self._rng)}

    def import_state(self, state: dict[str, Any]) -> None:
        """Restore the jitter stream captured by :meth:`export_state`."""
        set_rng_state(self._rng, state["rng"])

    def poison_count(self, n_benign: int) -> int:
        """Number of poison points injected alongside ``n_benign`` rows."""
        return int(round(self.attack_ratio * n_benign))

    def _positions(self, percentile: float, count: int) -> Array:
        low = min(1.0, max(0.0, percentile))
        high = min(1.0, low + self.jitter)
        if high <= low:
            return np.full(count, low)
        return self._rng.uniform(low, high, size=count)

    def _materialize_1d(self, benign: Array, positions: Array) -> Array:
        source = self._ref_values if self._ref_values is not None else benign
        return np.quantile(source, positions)

    def _materialize_corner(
        self, benign: Array, positions: Array
    ) -> Array:
        # np.quantile with axis=0 over a (count,) position vector gives
        # shape (count, d): one per-feature quantile corner per position.
        return np.quantile(benign, positions, axis=0)

    def _materialize_radial(
        self, benign: Array, positions: Array
    ) -> Array:
        if self._ref_center is not None and self._ref_scores is not None:
            center = self._ref_center
            scores = self._ref_scores
            corner = self._ref_corner
        else:
            center = np.median(benign, axis=0)
            scores = np.linalg.norm(benign - center, axis=1)
            corner = np.quantile(benign, 0.99, axis=0)
        targets = np.quantile(scores, positions)

        # Colluding direction: toward the upper-tail quantile corner.
        direction = corner - center
        norm = float(np.linalg.norm(direction))
        if norm <= 0.0:
            # Degenerate batch: fall back to the first axis direction.
            direction = np.zeros(benign.shape[1])
            direction[0] = 1.0
            norm = 1.0
        direction = direction / norm
        return center[None, :] + targets[:, None] * direction[None, :]

    def materialize(self, benign: Array, percentile: float) -> Array:
        """Poison rows for one round, at a percentile of ``benign``.

        Returns an array shaped like ``benign`` rows: ``(m,)`` for 1-D
        input, ``(m, d)`` for 2-D, with ``m = poison_count(len(benign))``.
        """
        arr = np.asarray(benign, dtype=float)
        if arr.ndim not in (1, 2):
            raise ValueError("benign batches must be 1-D or 2-D")
        count = self.poison_count(arr.shape[0])
        if count == 0:
            return arr[:0].copy()
        positions = self._positions(percentile, count)
        if arr.ndim == 1:
            return self._materialize_1d(arr, positions)
        if self.mode == "radial":
            return self._materialize_radial(arr, positions)
        return self._materialize_corner(arr, positions)


class LanePositionServer:
    """Blocked jitter-position draws for L per-lane injectors.

    ``PoisonInjector._positions`` costs one ``Generator.uniform`` call
    per lane per round; across a fused cohort that is the last per-lane
    RNG floor in the hot loop.  The server pre-draws *blocks* of
    standard uniforms from per-lane **shadow** Generators (bit-state
    copies of each lane's own jitter Generator) and converts them per
    round with ``low + (high - low) * u`` — elementwise the exact
    expression ``Generator.uniform`` evaluates per double — so served
    positions are bit-identical to the solo draws.  :meth:`sync`
    advances each lane's *real* Generator wholesale (``PCG64.advance``
    by the number of doubles actually consumed), which keeps
    snapshot/restore and solo escapes bit-exact: the real Generator is
    only ever observed at a position it would have reached drawing
    solo.

    Rounds where a lane's jitter band is empty (``high <= low``)
    consume no doubles, exactly like the solo path.  Lanes whose bit
    generator is not :class:`numpy.random.PCG64` (no ``advance``) are
    served through their own ``_positions`` — correct, just not
    batched.
    """

    _BLOCK = 256

    def __init__(self, injectors: Sequence[PoisonInjector]) -> None:
        self.injectors = list(injectors)
        n = len(self.injectors)
        self._jitters = np.array(
            [float(inj.jitter) for inj in self.injectors]
        )
        self._shadows: List[Optional[np.random.Generator]] = [None] * n
        self._eligible = np.zeros(n, dtype=bool)
        for r, inj in enumerate(self.injectors):
            if isinstance(inj._rng.bit_generator, np.random.PCG64):
                shadow = np.random.Generator(np.random.PCG64())
                set_rng_state(shadow, rng_state(inj._rng))
                self._shadows[r] = shadow
                self._eligible[r] = True
        self._matrix: Optional[Array] = None  # (L, B) pre-drawn doubles
        self._cursors = np.zeros(n, dtype=np.int64)
        self._pending = np.zeros(n, dtype=np.int64)

    def _refill(self, lanes: Array, count: int) -> None:
        """Top up the pre-drawn blocks of ``lanes`` to serve ``count``.

        Unused tail doubles are always carried over — the doubles a lane
        consumes must stay contiguous with its shadow stream, or served
        positions would skip draws the solo game takes.
        """
        width = 0 if self._matrix is None else self._matrix.shape[1]
        if count > width:
            new_width = max(self._BLOCK, 4 * count)
            fresh = np.empty((len(self.injectors), new_width))
            for r in np.flatnonzero(self._eligible):
                tail = (
                    self._matrix[r, self._cursors[r]:]
                    if self._matrix is not None
                    else np.empty(0)
                )
                fresh[r, : tail.size] = tail
                fresh[r, tail.size:] = self._shadows[r].random(
                    new_width - tail.size
                )
            self._matrix = fresh
            self._cursors[:] = 0
            return
        for r in lanes:
            cursor = int(self._cursors[r])
            if cursor + count <= width:
                continue
            row = self._matrix[r]
            tail = row[cursor:].copy()
            row[: tail.size] = tail
            row[tail.size:] = self._shadows[r].random(width - tail.size)
            self._cursors[r] = 0

    def positions(
        self, lanes: Array, percentiles: Array, count: int
    ) -> Array:
        """(rows, count) jitter positions; row ``j`` serves lane ``lanes[j]``."""
        lanes = np.asarray(lanes, dtype=np.intp)
        rows = lanes.shape[0]
        p = np.asarray(percentiles, dtype=float)
        low = np.minimum(1.0, np.maximum(0.0, p))
        high = np.minimum(1.0, low + self._jitters[lanes])
        out = np.empty((rows, count))
        draw = high > low
        if not np.all(draw):
            flat = np.flatnonzero(~draw)
            out[flat] = low[flat][:, None]  # np.full(count, low), batched
        eligible = self._eligible[lanes]
        for j in np.flatnonzero(draw & ~eligible):
            out[j] = self.injectors[lanes[j]]._positions(float(p[j]), count)
        active = np.flatnonzero(draw & eligible)
        if active.size:
            served = lanes[active]
            self._refill(served, count)
            gather = self._cursors[served][:, None] + np.arange(count)
            u = self._matrix[served[:, None], gather]
            out[active] = (
                low[active][:, None]
                + (high[active] - low[active])[:, None] * u
            )
            self._cursors[served] += count
            self._pending[served] += count
        return out

    def sync(self) -> None:
        """Advance each real Generator past the doubles served so far."""
        for r in np.flatnonzero(self._pending):
            self.injectors[r]._rng.bit_generator.advance(
                int(self._pending[r])
            )
        self._pending[:] = 0


class BatchedInjector:
    """Rep-batched poison materialization over R per-rep injectors.

    The batched engine plays R repetitions in lockstep; each rep keeps
    its **own** :class:`PoisonInjector` (own jitter Generator, seeded
    with that rep's derivation-channel child) so the per-rep draw
    sequences are byte-identical to R solo games.  The quantile algebra
    that turns percentile positions into poison values is shared and
    vectorized across the rep axis: one :func:`numpy.quantile`
    evaluation over the ``(R, count)`` position stack instead of R
    Python round-trips.

    All wrapped injectors must agree on ``attack_ratio``/``jitter``/
    ``mode`` (the batched engine groups reps of one sweep cell, which
    guarantees it).
    """

    def __init__(self, injectors: Sequence[PoisonInjector]) -> None:
        injectors = list(injectors)
        if not injectors:
            raise ValueError("need at least one injector")
        lead = injectors[0]
        for other in injectors[1:]:
            if (
                other.attack_ratio != lead.attack_ratio
                or other.jitter != lead.jitter
                or other.mode != lead.mode
            ):
                raise ValueError(
                    "all rep injectors must share attack_ratio/jitter/mode"
                )
        self.injectors = injectors
        self._position_server: Optional[LanePositionServer] = None

    @property
    def n_reps(self) -> int:
        """Number of rep lanes."""
        return len(self.injectors)

    @property
    def lead(self) -> PoisonInjector:
        """The first rep's injector (shared calibration source)."""
        return self.injectors[0]

    def fit_reference(self, reference: ArrayLike) -> "BatchedInjector":
        """Fit the lead injector and share its calibration with all reps.

        ``fit_reference`` is deterministic, so fitting once and aliasing
        the (read-only-by-convention) calibration arrays is identical to
        R independent fits at 1/R of the cost.
        """
        lead = self.lead
        lead.fit_reference(reference)
        for other in self.injectors[1:]:
            other._ref_center = lead._ref_center
            other._ref_scores = lead._ref_scores
            other._ref_values = lead._ref_values
            other._ref_corner = lead._ref_corner
        return self

    def reset(self) -> None:
        """Rewind every rep's jitter stream."""
        for injector in self.injectors:
            injector.reset()
        self._position_server = None

    def _server(self) -> LanePositionServer:
        # Built lazily so the shadow Generators copy each lane's
        # bit-state at the moment draws actually start.
        if self._position_server is None:
            self._position_server = LanePositionServer(self.injectors)
        return self._position_server

    def finalize(self) -> None:
        """Advance the real jitter Generators past the served draws."""
        if self._position_server is not None:
            self._position_server.sync()

    def poison_count(self, n_benign: int) -> int:
        """Poison rows per rep for ``n_benign`` benign rows (rep-uniform)."""
        return self.lead.poison_count(n_benign)

    def poison_counts(self, n_benign: int) -> Array:
        """(R,) per-lane poison counts — rep-uniform for this wrapper."""
        return np.full(
            self.n_reps, self.lead.poison_count(n_benign), dtype=np.int64
        )

    def materialize_many(
        self,
        benign: Array,
        percentiles: Array,
        idx: Optional[Array] = None,
    ) -> Array:
        """Poison stacks for one lockstep round.

        ``benign`` is the round's benign stack ``(R, b)`` or
        ``(R, b, d)``; ``percentiles`` the (all-finite) per-rep injection
        positions.  Returns ``(R, m[, d])`` with
        ``m = poison_count(b)``.  Per-rep jitter positions are drawn
        from each rep's own Generator (identical to the solo
        ``materialize``), then converted to values in one vectorized
        quantile pass.  ``idx`` restricts the call to a sub-segment of
        lanes: row ``j`` of the stack belongs to lane ``idx[j]``.
        """
        stack = np.asarray(benign, dtype=float)
        if stack.ndim not in (2, 3):
            raise ValueError("benign stacks must be (R, b) or (R, b, d)")
        lanes = np.arange(self.n_reps) if idx is None else np.asarray(idx)
        if stack.shape[0] != lanes.shape[0]:
            raise ValueError(
                f"stack carries {stack.shape[0]} reps for {lanes.shape[0]} lanes"
            )
        n_rows = stack.shape[0]
        count = self.poison_count(stack.shape[1])
        if count == 0:
            return stack[:, :0]
        positions = self._server().positions(lanes, percentiles, count)
        lead = self.lead
        if stack.ndim == 2:
            if lead._ref_values is not None:
                return np.quantile(lead._ref_values, positions.ravel()).reshape(
                    n_rows, count
                )
            return np.stack(
                [
                    lead._materialize_1d(stack[j], positions[j])
                    for j in range(n_rows)
                ]
            )
        if lead.mode == "radial":
            return self._materialize_radial_many(stack, positions)
        # Quantile-corner mode anchors on each rep's own batch: per-rep
        # quantile passes, exactly like the solo path.
        return np.stack(
            [
                lead._materialize_corner(stack[j], positions[j])
                for j in range(n_rows)
            ]
        )

    def _materialize_radial_many(
        self, stack: Array, positions: Array
    ) -> Array:
        lead = self.lead
        if lead._ref_center is None or lead._ref_scores is None:
            return np.stack(
                [
                    lead._materialize_radial(stack[r], positions[r])
                    for r in range(stack.shape[0])
                ]
            )
        center = lead._ref_center
        scores = lead._ref_scores
        corner = lead._ref_corner
        n_reps, count = positions.shape
        targets = np.quantile(scores, positions.ravel()).reshape(n_reps, count)
        direction = corner - center
        norm = float(np.linalg.norm(direction))
        if norm <= 0.0:
            direction = np.zeros(stack.shape[2])
            direction[0] = 1.0
            norm = 1.0
        direction = direction / norm
        return (
            center[None, None, :]
            + targets[:, :, None] * direction[None, None, :]
        )
