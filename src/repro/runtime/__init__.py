"""Parallel sweep runtime: declarative game specs and grid execution.

The paper's experiments (Figs. 4–9, Tables I–IV) are all sweeps over
repeated collection games.  This subsystem factors the shared mechanics
out of the individual experiment runners:

* :mod:`repro.runtime.spec` — :class:`ComponentSpec` (picklable factory
  recipes) and :class:`GameSpec` (one fully-described game cell with
  deterministic ``SeedSequence`` seed derivation);
* :mod:`repro.runtime.runner` — :class:`SweepGrid` (cross-product
  expansion with collision-free per-cell seeds) and :class:`SweepRunner`
  (serial or process-parallel execution with in-worker reduction).

Quickstart::

    from repro.runtime import (
        ComponentSpec, StrategyPair, SweepGrid, SweepRunner,
    )
    from repro.core.strategies import ElasticCollector, FixedAdversary

    grid = SweepGrid(
        pairs=(
            StrategyPair(
                "elastic-vs-extreme",
                ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5}),
                ComponentSpec(FixedAdversary, {"percentile": 0.99}),
            ),
        ),
        attack_ratios=(0.1, 0.2, 0.4),
        repetitions=5,
        seed=0,
    )
    records = SweepRunner(workers=4).run_grid(grid)
"""

from .runner import (
    GameRecord,
    StrategyPair,
    SweepGrid,
    SweepRunner,
    cross_pairs,
    play_game,
    summarize_game,
)
from .spec import (
    ADVERSARY_CHANNEL,
    COLLECTOR_CHANNEL,
    ComponentSpec,
    GameSpec,
    INJECTOR_CHANNEL,
    JUDGE_CHANNEL,
    QUALITY_CHANNEL,
    SOURCE_CHANNEL,
    USER_CHANNEL,
    build_batched_game,
    load_reference,
    play_rep_batch,
    rep_group_key,
)

__all__ = [
    "ComponentSpec",
    "GameSpec",
    "GameRecord",
    "StrategyPair",
    "SweepGrid",
    "SweepRunner",
    "cross_pairs",
    "play_game",
    "summarize_game",
    "load_reference",
    "build_batched_game",
    "play_rep_batch",
    "rep_group_key",
    "SOURCE_CHANNEL",
    "COLLECTOR_CHANNEL",
    "ADVERSARY_CHANNEL",
    "INJECTOR_CHANNEL",
    "JUDGE_CHANNEL",
    "QUALITY_CHANNEL",
    "USER_CHANNEL",
]
