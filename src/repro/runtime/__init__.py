"""Parallel sweep runtime: declarative game specs and grid execution.

The paper's experiments (Figs. 4–9, Tables I–IV) are all sweeps over
repeated collection games.  This subsystem factors the shared mechanics
out of the individual experiment runners:

* :mod:`repro.runtime.spec` — :class:`ComponentSpec` (picklable factory
  recipes), :class:`GameSpec` (one fully-described game cell with
  deterministic ``SeedSequence`` seed derivation) and :class:`TaskSpec`
  (the non-game compute cell riding the same machinery);
* :mod:`repro.runtime.runner` — :class:`SweepGrid` (cross-product
  expansion with collision-free per-cell seeds) and :class:`SweepRunner`
  (serial or process-parallel execution with in-worker reduction);
* :mod:`repro.runtime.store` — :class:`ResultStore`, the
  content-addressed record cache that makes sweeps cacheable and
  resumable (``SweepRunner(store=...)`` skips stored cells and
  checkpoints fresh records as they complete);
* :mod:`repro.runtime.faults` — :class:`FaultPlan` /
  :class:`FaultInjector`, the seeded chaos harness the supervised
  runner's retry/timeout/quarantine machinery is tested with.

Quickstart::

    from repro.runtime import (
        ComponentSpec, StrategyPair, SweepGrid, SweepRunner,
    )
    from repro.core.strategies import ElasticCollector, FixedAdversary

    grid = SweepGrid(
        pairs=(
            StrategyPair(
                "elastic-vs-extreme",
                ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5}),
                ComponentSpec(FixedAdversary, {"percentile": 0.99}),
            ),
        ),
        attack_ratios=(0.1, 0.2, 0.4),
        repetitions=5,
        seed=0,
    )
    records = SweepRunner(workers=4).run_grid(grid)
"""

from .faults import (
    CellFault,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    TornWriteStore,
    WorkerKilled,
)
from .runner import (
    CellTimeoutError,
    FailureRecord,
    GameRecord,
    StrategyPair,
    SweepGrid,
    SweepRunner,
    SweepStats,
    cross_pairs,
    play_game,
    summarize_game,
)
from .spec import (
    ADVERSARY_CHANNEL,
    COLLECTOR_CHANNEL,
    INJECTOR_CHANNEL,
    JUDGE_CHANNEL,
    QUALITY_CHANNEL,
    SOURCE_CHANNEL,
    USER_CHANNEL,
    ComponentSpec,
    GameSpec,
    TaskSpec,
    build_batched_game,
    load_reference,
    play_rep_batch,
    rep_group_key,
)
from .store import ResultStore, spec_fingerprint, spec_hash

__all__ = [
    "ComponentSpec",
    "GameSpec",
    "TaskSpec",
    "GameRecord",
    "FailureRecord",
    "CellFault",
    "CellTimeoutError",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "TornWriteStore",
    "WorkerKilled",
    "StrategyPair",
    "SweepGrid",
    "SweepRunner",
    "SweepStats",
    "ResultStore",
    "spec_fingerprint",
    "spec_hash",
    "cross_pairs",
    "play_game",
    "summarize_game",
    "load_reference",
    "build_batched_game",
    "play_rep_batch",
    "rep_group_key",
    "SOURCE_CHANNEL",
    "COLLECTOR_CHANNEL",
    "ADVERSARY_CHANNEL",
    "INJECTOR_CHANNEL",
    "JUDGE_CHANNEL",
    "QUALITY_CHANNEL",
    "USER_CHANNEL",
]
