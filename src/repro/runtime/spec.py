"""Declarative, picklable game descriptions (the sweep runtime's unit).

Every experiment in the paper is a *sweep*: a cross-product of seeds,
strategy pairings, attack ratios and datasets, each cell of which is one
full :class:`~repro.core.engine.CollectionGame`.  A :class:`GameSpec` is
the self-contained description of one such cell — everything needed to
*build and play* the game, expressed as data rather than live objects so
it can cross a process boundary:

* components (strategies, trimmer, judge, quality evaluator) are carried
  as :class:`ComponentSpec` — an importable factory plus constructor
  kwargs — instead of instances, so no game ever shares mutable strategy
  state with another;
* the dataset is carried by registry *name* (plus optional subsample
  size) and loaded lazily — per worker process, through a small cache —
  instead of being pickled into every cell;
* randomness is carried as a :class:`numpy.random.SeedSequence`; every
  stochastic component (stream shuffle, adversary, injector, judge,
  collector) receives its own deterministic child derived with a fixed
  *channel* index, so two specs with distinct spawn keys can never
  collide the way ad-hoc ``seed + 13*i + 7*j`` arithmetic does.

Because the spec fully determines the game, ``spec.play()`` returns the
same :class:`~repro.core.engine.GameResult` whether it runs in the parent
process or a worker — the property the parallel
:class:`~repro.runtime.runner.SweepRunner` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from ..core.engine import (
    BatchedCollectionGame,
    CollectionGame,
    GameResult,
)
from ..core.trimming import RadialTrimmer
from ..datasets.registry import load_dataset
from ..streams.injection import PoisonInjector
from ..streams.source import ArrayStream

if TYPE_CHECKING:  # import only for annotations: keep runtime deps lean
    from ..core.session import GameSession

__all__ = [
    "ComponentSpec",
    "GameSpec",
    "TaskSpec",
    "SeedLike",
    "load_reference",
    "rep_group_key",
    "rep_keys_equal",
    "fusion_group_key",
    "build_batched_game",
    "play_rep_batch",
    "play_fused_batch",
    "SOURCE_CHANNEL",
    "COLLECTOR_CHANNEL",
    "ADVERSARY_CHANNEL",
    "INJECTOR_CHANNEL",
    "JUDGE_CHANNEL",
    "QUALITY_CHANNEL",
    "USER_CHANNEL",
]

#: Fixed seed-derivation channels.  Each stochastic component of a game
#: draws its seed from ``GameSpec.child_seed(<channel>)``; the indices
#: are part of the reproducibility contract — reordering them changes
#: every downstream stream.
SOURCE_CHANNEL = 0
COLLECTOR_CHANNEL = 1
ADVERSARY_CHANNEL = 2
INJECTOR_CHANNEL = 3
JUDGE_CHANNEL = 4
QUALITY_CHANNEL = 5
#: First channel index reserved for user code (reducers, analytics).
USER_CHANNEL = 8

SeedLike = Union[int, np.random.SeedSequence]


@dataclass(frozen=True)
class ComponentSpec:
    """An importable factory plus kwargs — a picklable recipe for one object.

    ``factory`` must be a module-level callable (a class or function);
    lambdas and closures cannot cross process boundaries.  ``kwargs``
    values may themselves be :class:`ComponentSpec` instances (e.g. a
    trigger inside a collector), which are built recursively.  With
    ``seeded=True`` the build seed — a :class:`numpy.random.SeedSequence`
    accepted verbatim by ``numpy.random.default_rng`` — is passed as the
    ``seed`` keyword.
    """

    factory: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seeded: bool = False

    def __post_init__(self) -> None:
        if self.seeded and "seed" in self.kwargs:
            raise ValueError(
                "a seeded ComponentSpec derives its own 'seed' at build "
                "time; remove the explicit 'seed' kwarg"
            )

    @staticmethod
    def _nested_seed(
        seed: Optional[SeedLike], index: int
    ) -> Optional[np.random.SeedSequence]:
        """A distinct child seed per nested component (never the parent's)."""
        if seed is None:
            return None
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        return np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=tuple(root.spawn_key) + (int(index),),
        )

    def build(self, seed: Optional[SeedLike] = None) -> Any:
        """Instantiate the component (fresh object every call)."""
        built = {}
        for index, (key, value) in enumerate(self.kwargs.items()):
            if isinstance(value, ComponentSpec):
                built[key] = value.build(self._nested_seed(seed, index))
            else:
                built[key] = value
        if self.seeded:
            built["seed"] = seed
        return self.factory(**built)

    @property
    def name(self) -> str:
        """Best-effort display name of the component."""
        return getattr(self.factory, "__name__", str(self.factory))


@lru_cache(maxsize=8)
def _load_reference_cached(name: str, size: Optional[int]) -> np.ndarray:
    data, _ = load_dataset(name, n_samples=size)
    data.setflags(write=False)  # shared across every game in this process
    return data


def load_reference(name: str, size: Optional[int] = None) -> np.ndarray:
    """Load a registry dataset's feature matrix, cached per process.

    Workers replaying many :class:`GameSpec` cells over the same dataset
    hit the cache instead of regenerating it per game; the array is
    marked read-only because it is shared.
    """
    return _load_reference_cached(name, None if size is None else int(size))


@dataclass(frozen=True)
class GameSpec:
    """Complete, picklable description of one collection game.

    Parameters mirror :class:`~repro.core.engine.CollectionGame`, with
    live objects replaced by :class:`ComponentSpec` recipes and the
    benign stream replaced by a dataset registry name.  ``tags`` is
    free-form labeling (scheme name, attack ratio, repetition index …)
    that sweep reducers use to place the cell in an aggregate table.
    """

    collector: ComponentSpec
    adversary: ComponentSpec
    dataset: str = "control"
    dataset_size: Optional[int] = None
    attack_ratio: float = 0.2
    injection_mode: str = "radial"
    injection_jitter: float = 0.01
    trimmer: ComponentSpec = field(
        default_factory=lambda: ComponentSpec(RadialTrimmer)
    )
    quality: Optional[ComponentSpec] = None
    judge: Optional[ComponentSpec] = None
    rounds: int = 20
    batch_size: int = 100
    anchor: str = "reference"
    store_retained: bool = True
    seed: SeedLike = 0
    tags: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def seed_sequence(self) -> np.random.SeedSequence:
        """The spec's root :class:`~numpy.random.SeedSequence`."""
        if isinstance(self.seed, np.random.SeedSequence):
            return self.seed
        return np.random.SeedSequence(self.seed)

    def child_seed(self, channel: int) -> np.random.SeedSequence:
        """Deterministic, collision-free child seed for one channel.

        Equivalent to ``SeedSequence.spawn`` — the channel index extends
        the spawn key — but stateless, so the same channel always yields
        the same child no matter how many were derived before it.
        """
        root = self.seed_sequence()
        return np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=tuple(root.spawn_key) + (int(channel),),
        )

    def with_tags(self, **tags: Any) -> "GameSpec":
        """A copy of the spec with extra tags merged in."""
        merged = dict(self.tags)
        merged.update(tags)
        return replace(self, tags=merged)

    # ------------------------------------------------------------------ #
    def build(self) -> CollectionGame:
        """Materialize the game: load data, build components, wire engine."""
        data = load_reference(self.dataset, self.dataset_size)
        quality = (
            None if self.quality is None
            else self.quality.build(self.child_seed(QUALITY_CHANNEL))
        )
        judge = (
            None if self.judge is None
            else self.judge.build(self.child_seed(JUDGE_CHANNEL))
        )
        return CollectionGame(
            source=ArrayStream(
                data,
                batch_size=self.batch_size,
                seed=self.child_seed(SOURCE_CHANNEL),
            ),
            collector=self.collector.build(self.child_seed(COLLECTOR_CHANNEL)),
            adversary=self.adversary.build(self.child_seed(ADVERSARY_CHANNEL)),
            injector=PoisonInjector(
                attack_ratio=self.attack_ratio,
                jitter=self.injection_jitter,
                mode=self.injection_mode,
                seed=self.child_seed(INJECTOR_CHANNEL),
            ),
            trimmer=self.trimmer.build(),
            reference=data,
            quality_evaluator=quality,
            judge=judge,
            rounds=self.rounds,
            anchor=self.anchor,
            store_retained=self.store_retained,
        )

    def play(self) -> GameResult:
        """Build and run the game to completion."""
        return self.build().run()

    def session(
        self,
        horizon: Union[int, str, None] = "rounds",
        payoff_model: Any = None,
    ) -> "GameSession":
        """Open a live :class:`~repro.core.session.GameSession` of this cell.

        Builds the game and hands its stream to the session
        (``attach_source=True``), so ``submit()`` with no batch serves
        the spec's own traffic — the entry point
        :class:`~repro.serving.DefenseService` tenants are opened
        through.  ``horizon`` defaults to the spec's ``rounds``; pass
        ``None`` for an open-ended session.
        """
        return self.build().session(
            horizon=self.rounds if horizon == "rounds" else horizon,
            payoff_model=payoff_model,
            attach_source=True,
        )


@dataclass(frozen=True)
class TaskSpec:
    """A generic, picklable compute cell for non-game sweeps.

    Not every paper artifact is a collection game: Table IV iterates the
    coupled Elastic responses analytically, Fig. 9 plays LDP reporting
    rounds, and the classifier panels wrap whole train/evaluate runs.  A
    ``TaskSpec`` carries such cells through the same
    :class:`~repro.runtime.runner.SweepRunner` /
    :class:`~repro.runtime.store.ResultStore` machinery as
    :class:`GameSpec` cells: ``task`` is a :class:`ComponentSpec` whose
    *build is the computation* — ``play()`` evaluates
    ``task.build(seed)`` and the returned value is the cell's record
    (the runner applies no default reducer to task cells).

    ``seed`` mirrors :class:`GameSpec`: ``None`` for deterministic
    tasks, otherwise the root :class:`~numpy.random.SeedSequence` the
    task consumes (via a ``seeded=True`` recipe or the fixed
    :func:`child_seed` channels).  ``tags`` is free-form labeling for
    aggregation, exactly as on :class:`GameSpec`.
    """

    task: ComponentSpec
    seed: Optional[SeedLike] = None
    tags: Mapping[str, Any] = field(default_factory=dict)

    def seed_sequence(self) -> Optional[np.random.SeedSequence]:
        """The spec's root seed, or ``None`` for deterministic tasks."""
        if self.seed is None:
            return None
        if isinstance(self.seed, np.random.SeedSequence):
            return self.seed
        return np.random.SeedSequence(self.seed)

    def child_seed(self, channel: int) -> np.random.SeedSequence:
        """Deterministic child seed for one channel (see ``GameSpec``)."""
        root = self.seed_sequence()
        if root is None:
            raise ValueError("a seedless TaskSpec has no child seeds")
        return np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=tuple(root.spawn_key) + (int(channel),),
        )

    def with_tags(self, **tags: Any) -> "TaskSpec":
        """A copy of the spec with extra tags merged in."""
        merged = dict(self.tags)
        merged.update(tags)
        return replace(self, tags=merged)

    def play(self) -> Any:
        """Evaluate the task; the return value is the cell's record."""
        return self.task.build(self.seed_sequence())


# --------------------------------------------------------------------- #
# rep batching: many specs differing only in seed → one lockstep game
# --------------------------------------------------------------------- #
def rep_group_key(spec: GameSpec) -> tuple:
    """Everything about a spec *except* its seed and tags.

    Two specs with equal keys describe the same game cell played under
    different randomness — exactly the repetitions of one sweep cell —
    and may be collapsed into a single
    :class:`~repro.core.engine.BatchedCollectionGame`.  Compare keys
    with ``==`` (component specs hold dict kwargs, so keys are not
    hashable).
    """
    return (
        spec.collector,
        spec.adversary,
        spec.dataset,
        spec.dataset_size,
        spec.attack_ratio,
        spec.injection_mode,
        spec.injection_jitter,
        spec.trimmer,
        spec.quality,
        spec.judge,
        spec.rounds,
        spec.batch_size,
        spec.anchor,
        spec.store_retained,
    )


def rep_keys_equal(a: tuple, b: tuple) -> bool:
    """Safe equality between two :func:`rep_group_key` tuples.

    Component specs may carry ndarray kwargs (e.g. reference centroids),
    whose ``==`` yields an elementwise array and makes the tuple
    comparison raise.  Such specs conservatively compare unequal unless
    they are the very same objects (which grid expansion guarantees for
    a cell's repetitions) — the group degrades to singletons instead of
    crashing.
    """
    try:
        return bool(a == b)
    except ValueError:  # ambiguous ndarray truth value inside kwargs
        return all(x is y for x, y in zip(a, b, strict=False))


def build_batched_game(specs: Iterable[GameSpec]) -> BatchedCollectionGame:
    """Materialize one lockstep engine for R same-cell specs.

    Every per-rep component is built from its own spec's derivation
    channels — byte-for-byte the seeds the solo ``spec.build()`` would
    have used — while deterministic calibration (dataset, trimmer) is
    shared across the reps.
    """
    specs = list(specs)
    if not specs:
        raise ValueError("need at least one spec")
    lead = specs[0]
    key = rep_group_key(lead)
    for other in specs[1:]:
        if not rep_keys_equal(rep_group_key(other), key):
            raise ValueError(
                "rep-batched specs must agree on everything except seed "
                "and tags"
            )
    data = load_reference(lead.dataset, lead.dataset_size)
    quality = (
        None
        if lead.quality is None
        else [
            spec.quality.build(spec.child_seed(QUALITY_CHANNEL))
            for spec in specs
        ]
    )
    judges = (
        None
        if lead.judge is None
        else [
            spec.judge.build(spec.child_seed(JUDGE_CHANNEL)) for spec in specs
        ]
    )
    return BatchedCollectionGame(
        source=ArrayStream(
            data,
            batch_size=lead.batch_size,
            seed=[spec.child_seed(SOURCE_CHANNEL) for spec in specs],
        ),
        collectors=[
            spec.collector.build(spec.child_seed(COLLECTOR_CHANNEL))
            for spec in specs
        ],
        adversaries=[
            spec.adversary.build(spec.child_seed(ADVERSARY_CHANNEL))
            for spec in specs
        ],
        injectors=[
            PoisonInjector(
                attack_ratio=spec.attack_ratio,
                jitter=spec.injection_jitter,
                mode=spec.injection_mode,
                seed=spec.child_seed(INJECTOR_CHANNEL),
            )
            for spec in specs
        ],
        # One trimmer per rep, exactly as R solo spec.build() calls would
        # create: the engine shares the lead for the stateless shipped
        # classes and keeps per-rep isolation for custom trimmers.
        trimmer=[spec.trimmer.build() for spec in specs],
        reference=data,
        quality_evaluators=quality,
        judges=judges,
        rounds=lead.rounds,
        anchor=lead.anchor,
        store_retained=lead.store_retained,
    )


def play_rep_batch(specs: Iterable[GameSpec]) -> List[GameResult]:
    """Play R same-cell specs in lockstep; one result per spec, in order.

    Each returned :class:`~repro.core.engine.GameResult` is
    byte-identical to the corresponding ``spec.play()`` — the batched
    engine's reproducibility contract.  A single spec short-circuits to
    the solo engine.
    """
    specs = list(specs)
    if len(specs) == 1:
        return [specs[0].play()]
    return build_batched_game(specs).run().results()


# --------------------------------------------------------------------- #
# cross-cell fusion: different cells, one lockstep family
# --------------------------------------------------------------------- #
def fusion_group_key(spec: GameSpec) -> tuple:
    """The lockstep *family* of a spec: what must match for lanes to fuse.

    Strictly coarser than :func:`rep_group_key`: strategies, dataset,
    attack ratio, jitter, horizon and seed may all differ lane to lane —
    the fusion layer (:mod:`repro.core.fusion`) packs them into per-lane
    parameter columns — but the stacked kernels need one injection mode,
    one trimmer/quality/judge *class* and one batch geometry across the
    cohort.  Compare keys with :func:`rep_keys_equal` (component
    factories may be any callables).
    """
    return (
        "fusion/v1",
        spec.injection_mode,
        spec.trimmer.factory,
        None if spec.quality is None else spec.quality.factory,
        None if spec.judge is None else spec.judge.factory,
        spec.batch_size,
        spec.anchor,
        spec.store_retained,
    )


def play_fused_batch(specs: Iterable[GameSpec]) -> List[GameResult]:
    """Play L same-*family* specs through one fused lockstep; results in order.

    The cross-cell counterpart of :func:`play_rep_batch`: the specs may
    differ in strategies, attack ratios, datasets and horizons as long
    as they share a :func:`fusion_group_key`.  Each cell is opened as a
    tenant of a private :class:`~repro.serving.DefenseService` and the
    cohort is stepped round by round through the fused
    ``submit_many`` path; cells whose horizon has elapsed drop out of
    the round loop.  Every returned
    :class:`~repro.core.engine.GameResult` is byte-identical to the
    corresponding solo ``spec.play()`` — the fusion layer's contract.
    A single spec short-circuits to the solo engine.
    """
    specs = list(specs)
    if len(specs) == 1:
        return [specs[0].play()]
    # Runtime import: the serving layer sits above the runtime layer.
    from ..serving.service import DefenseService

    service = DefenseService()
    ids = [service.open(spec) for spec in specs]
    horizons = [spec.rounds for spec in specs]
    round_index = 0
    while True:
        active = [
            sid
            for sid, horizon in zip(ids, horizons, strict=False)
            if round_index < horizon
        ]
        if not active:
            break
        service.submit_many(active)
        round_index += 1
    return [service.close(sid) for sid in ids]
