"""Deterministic fault injection: the chaos harness the runtime is tested with.

A production sweep meets real failures — a poisoned cell raising deep in
a kernel, a worker OOM-killed mid-game, a machine dying between
``write()`` and ``rename()``.  This module makes every one of those
failure modes *reproducible on demand* so the supervised
:class:`~repro.runtime.runner.SweepRunner` and the
:class:`~repro.runtime.store.ResultStore` degradation paths can be
exercised deterministically, in tests and in the CI chaos smoke job:

* :class:`FaultPlan` — a frozen, seeded description of *which* faults
  strike *where*.  Faults are keyed by grid coordinate (the cell's
  position in the spec list) and attempt number; random plans derive
  each cell's fate from ``sha256(seed, cell)`` so the schedule is a pure
  function of ``(plan, cell, attempt)`` — independent of worker count,
  execution order, or how many times the plan object is consulted.
* :class:`FaultInjector` — the picklable runtime half: the runner calls
  :meth:`FaultInjector.before_cell` at the top of every cell attempt
  (in-process or inside a pool worker) and the injector raises an
  :class:`InjectedFault`, sleeps (a *slow* cell, for exercising
  timeouts), or SIGKILLs the worker process it runs in.  In serial
  execution kills are simulated by raising :class:`WorkerKilled`
  instead, so ``workers=1`` and ``workers=N`` face the same schedule.
* :class:`TornWriteStore` — a store wrapper that *tears* selected record
  writes (truncated bytes at the final path, exactly what a crash
  between write and rename leaves behind).  Torn records fail the
  store's checksum and read back as cache misses, which is how the
  resume path is driven.

The contract all of this exists to test: faults never change *what* a
cell computes — only whether an attempt completes.  Retries and resumed
runs replay the same pure spec, so records produced under any fault
schedule are byte-identical to a fault-free run.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Set, Tuple

if TYPE_CHECKING:  # annotation-only import; faults must not need the store
    from .store import ResultStore

__all__ = [
    "CellFault",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "TornWriteStore",
    "WorkerKilled",
]

#: Fault kinds a :class:`CellFault` may carry.
FAULT_KINDS = ("error", "slow", "kill")


class InjectedFault(RuntimeError):
    """A transient cell failure raised by the fault injector."""


class WorkerKilled(RuntimeError):
    """Simulated worker death (serial execution's stand-in for SIGKILL)."""


@dataclass(frozen=True)
class CellFault:
    """One cell's scripted misbehaviour.

    ``kind`` is ``"error"`` (raise :class:`InjectedFault`), ``"slow"``
    (sleep ``delay`` seconds before the cell runs — pair with a runner
    timeout) or ``"kill"`` (SIGKILL the worker process).  The fault
    fires on the cell's first ``attempts`` execution attempts and then
    clears, so a retrying supervisor recovers exactly when the schedule
    says it should.
    """

    kind: str
    attempts: int = 1
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; options: {FAULT_KINDS}"
            )
        if self.attempts < 1:
            raise ValueError("a fault must strike at least one attempt")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


def _unit_draw(*parts: Any) -> float:
    """Deterministic uniform draw in [0, 1) from hashed key parts.

    Stable across processes, platforms and Python versions (unlike
    ``hash()``), and stateless — the property that makes a random
    :class:`FaultPlan` consultable any number of times, in any order,
    from any worker, without drifting.
    """
    digest = hashlib.sha256(
        ":".join(str(part) for part in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded schedule of injected faults.

    ``cells`` pins explicit faults to grid coordinates; the ``*_rate``
    knobs additionally strike every *unpinned* cell independently with
    the given probabilities (kill first, then error, then slow — one
    fault per cell at most).  ``fault_attempts`` is how many attempts a
    rate-drawn fault poisons (pinned faults carry their own count);
    ``torn_rate`` is the per-record probability that the store tears a
    record's *first* write.
    """

    seed: int = 0
    cells: Tuple[Tuple[int, CellFault], ...] = ()
    error_rate: float = 0.0
    slow_rate: float = 0.0
    kill_rate: float = 0.0
    torn_rate: float = 0.0
    fault_attempts: int = 1
    slow_delay: float = 0.05

    def __post_init__(self) -> None:
        for rate in (self.error_rate, self.slow_rate, self.kill_rate,
                     self.torn_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must be in [0, 1]")
        if self.kill_rate + self.error_rate + self.slow_rate > 1.0:
            raise ValueError("kill + error + slow rates must not exceed 1")
        if self.fault_attempts < 1:
            raise ValueError("fault_attempts must be >= 1")
        seen = set()
        for index, fault in self.cells:
            if index in seen:
                raise ValueError(f"cell {index} pinned twice in the plan")
            seen.add(index)
            if not isinstance(fault, CellFault):
                raise TypeError("pinned faults must be CellFault instances")

    @classmethod
    def pinned(cls, cells: Mapping[int, CellFault], seed: int = 0,
               torn_rate: float = 0.0) -> "FaultPlan":
        """A plan of explicitly placed faults only (no random strikes)."""
        return cls(
            seed=seed,
            cells=tuple(sorted(cells.items())),
            torn_rate=torn_rate,
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from a compact CLI spec.

        Comma-separated ``key=value`` pairs, e.g.
        ``"seed=7,error=0.3,torn=0.25,attempts=2"``.  Keys: ``seed``,
        ``error``, ``slow``, ``kill``, ``torn`` (rates), ``attempts``
        (attempts a rate-drawn fault poisons), ``delay`` (slow-cell
        sleep seconds).
        """
        fields: Dict[str, Any] = {}
        mapping = {
            "seed": ("seed", int),
            "error": ("error_rate", float),
            "slow": ("slow_rate", float),
            "kill": ("kill_rate", float),
            "torn": ("torn_rate", float),
            "attempts": ("fault_attempts", int),
            "delay": ("slow_delay", float),
        }
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            key, sep, raw = chunk.partition("=")
            key = key.strip().lower()
            if not sep or key not in mapping:
                raise ValueError(
                    f"bad fault spec entry {chunk!r}; expected "
                    f"key=value with key in {sorted(mapping)}"
                )
            name, convert = mapping[key]
            try:
                fields[name] = convert(raw.strip())
            except ValueError as exc:
                raise ValueError(
                    f"bad value in fault spec entry {chunk!r}"
                ) from exc
        return cls(**fields)

    # ------------------------------------------------------------------ #
    def fault_for_cell(self, index: int) -> Optional[CellFault]:
        """The fault striking one grid coordinate, if any (pure function)."""
        for pinned_index, fault in self.cells:
            if pinned_index == index:
                return fault
        if self.kill_rate or self.error_rate or self.slow_rate:
            draw = _unit_draw("repro-fault-cell", self.seed, index)
            if draw < self.kill_rate:
                return CellFault("kill", attempts=self.fault_attempts)
            if draw < self.kill_rate + self.error_rate:
                return CellFault("error", attempts=self.fault_attempts)
            if draw < self.kill_rate + self.error_rate + self.slow_rate:
                return CellFault(
                    "slow",
                    attempts=self.fault_attempts,
                    delay=self.slow_delay,
                )
        return None

    def tears_record(self, key: str) -> bool:
        """Whether the store should tear this record key's first write.

        Keyed by record *content key* — not write order — so the torn
        set is identical for any worker count or completion order.
        """
        if self.torn_rate <= 0.0:
            return False
        return _unit_draw("repro-fault-torn", self.seed, key) < self.torn_rate

    @property
    def active(self) -> bool:
        """Whether the plan can strike anything at all."""
        return bool(
            self.cells
            or self.error_rate
            or self.slow_rate
            or self.kill_rate
            or self.torn_rate
        )

    def describe(self) -> str:
        """One-line human summary (CLI status output)."""
        parts = [f"seed={self.seed}"]
        if self.cells:
            parts.append(f"{len(self.cells)} pinned")
        for label, rate in (
            ("error", self.error_rate),
            ("slow", self.slow_rate),
            ("kill", self.kill_rate),
            ("torn", self.torn_rate),
        ):
            if rate:
                parts.append(f"{label}={rate:g}")
        return "FaultPlan(" + ", ".join(parts) + ")"


class FaultInjector:
    """The runtime half of a :class:`FaultPlan` — picklable, stateless.

    The supervised runner calls :meth:`before_cell` at the top of every
    cell attempt (the injector crosses the process boundary with the
    work, so pool workers strike themselves), and wraps its result
    store with :meth:`wrap_store` so the plan's torn writes happen on
    the real write path.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def before_cell(
        self, index: int, attempt: int, allow_kill: bool
    ) -> None:
        """Strike one cell attempt, per the plan.

        ``attempt`` is 0-based; a fault poisons attempts
        ``0..fault.attempts-1`` and then clears.  ``allow_kill=False``
        (serial execution) downgrades SIGKILL to a raised
        :class:`WorkerKilled`, which the runner treats as the same
        worker-crash failure class.
        """
        fault = self.plan.fault_for_cell(index)
        if fault is None or attempt >= fault.attempts:
            return
        if fault.kind == "slow":
            time.sleep(fault.delay)
            return
        if fault.kind == "error":
            raise InjectedFault(
                f"injected fault at cell {index} (attempt {attempt})"
            )
        # kind == "kill"
        if allow_kill:
            os.kill(os.getpid(), signal.SIGKILL)
        raise WorkerKilled(
            f"injected worker kill at cell {index} (attempt {attempt})"
        )

    def wrap_store(self, store: "ResultStore") -> "TornWriteStore":
        """A view of ``store`` whose record saves obey the torn schedule."""
        return TornWriteStore(store, self.plan)


class TornWriteStore:
    """Store wrapper that tears selected record writes (crash simulation).

    The first :meth:`save` of a key the plan marks writes *truncated*
    envelope bytes at the record's final path — the on-disk state a
    process killed between ``write()`` and the atomic rename cannot
    actually produce, but a torn non-atomic filesystem can, and exactly
    what the store's checksum must catch.  Subsequent saves of the same
    key go through intact, so a resumed sweep heals the record.
    Everything else (loads, keys, manifests) delegates to the wrapped
    :class:`~repro.runtime.store.ResultStore` untouched.
    """

    def __init__(self, store: "ResultStore", plan: FaultPlan):
        self._store = store
        self._plan = plan
        self._torn: Set[str] = set()

    def save(self, key: str, record: Any) -> None:
        if key not in self._torn and self._plan.tears_record(key):
            self._torn.add(key)
            path = self._store.record_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Genuinely torn: a prefix of a valid envelope, so json.load
            # fails (or, were the cut luckier, the checksum would).
            with open(path, "w") as handle:
                handle.write('{"format":')
            return
        self._store.save(key, record)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)
