"""Sweep execution: grid expansion and (optionally parallel) game runs.

The runner is the shared execution layer the paper's experiments sit on:

1. :class:`SweepGrid` expands a declarative cross-product — datasets ×
   attack ratios × strategy pairs × repetitions — into a flat list of
   :class:`~repro.runtime.spec.GameSpec` cells, deriving one
   collision-free :class:`numpy.random.SeedSequence` per cell from the
   cell's *coordinates* (``spawn_key=(dataset, ratio, pair, rep)``), so
   results are reproducible and independent of expansion or execution
   order.
2. :class:`SweepRunner` plays the cells — serially, or fanned out over a
   ``ProcessPoolExecutor`` with a configurable ``chunksize`` — and
   returns one record per cell *in grid order*.  Because every spec is
   self-contained (own seeds, own component recipes) and records are
   collected in submission order, ``workers=1`` and ``workers=N``
   produce byte-identical results.
3. A *reducer* — any picklable ``f(spec, result) -> record`` — turns the
   heavy in-worker :class:`~repro.core.engine.GameResult` (boards carry
   every retained row) into the small record that crosses the process
   boundary.  The default :func:`summarize_game` reducer emits a
   :class:`GameRecord` with the bookkeeping totals every experiment
   reports.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.engine import GameResult
from ..core.trimming import RadialTrimmer
from .spec import (
    ComponentSpec,
    GameSpec,
    TaskSpec,
    play_rep_batch,
    rep_group_key,
    rep_keys_equal,
)

__all__ = [
    "GameRecord",
    "StrategyPair",
    "SweepGrid",
    "SweepRunner",
    "SweepStats",
    "cross_pairs",
    "play_game",
    "summarize_game",
]


@dataclass(frozen=True)
class GameRecord:
    """Per-game summary record (the default reducer's output)."""

    tags: Mapping[str, Any]
    collector: str
    adversary: str
    rounds: int
    termination_round: Optional[int]
    n_collected: int
    n_retained: int
    n_poison_injected: int
    n_poison_retained: int
    poison_retained_fraction: float
    trimmed_fraction: float
    mean_trim_percentile: float

    def __getitem__(self, key: str) -> Any:
        """Dict-style access to tags, for aggregation convenience."""
        return self.tags[key]


def summarize_game(spec: GameSpec, result: GameResult) -> GameRecord:
    """The default reducer: compress a game into its bookkeeping totals.

    Reads the board's column arrays (never the per-round entry objects),
    so lockstep-sliced results summarize without materializing a single
    ``BoardEntry``.
    """
    cols = result.board.columns
    return GameRecord(
        tags=dict(spec.tags),
        collector=result.collector_name,
        adversary=result.adversary_name,
        rounds=result.rounds,
        termination_round=result.termination_round,
        n_collected=int(np.sum(cols.n_collected)),
        n_retained=int(np.sum(cols.n_retained)),
        n_poison_injected=int(np.sum(cols.n_poison_injected)),
        n_poison_retained=int(np.sum(cols.n_poison_retained)),
        poison_retained_fraction=result.poison_retained_fraction(),
        trimmed_fraction=result.trimmed_fraction(),
        mean_trim_percentile=float(np.mean(cols.trim_percentile)),
    )


def play_game(spec: GameSpec) -> GameResult:
    """Module-level (picklable) entry point: build and play one spec."""
    return spec.play()


def _default_record(spec: Union[GameSpec, TaskSpec], result: Any) -> Any:
    """Reducer-less record: summarize games, pass task results through."""
    if isinstance(spec, GameSpec):
        return summarize_game(spec, result)
    return result


def _run_cell(
    spec: Union[GameSpec, TaskSpec], reduce: Optional[Callable] = None
) -> Any:
    """Play one cell and reduce it in-process (worker-side)."""
    result = spec.play()
    if reduce is None:
        return _default_record(spec, result)
    return reduce(spec, result)


def _run_rep_group(
    specs: Sequence[GameSpec], reduce: Optional[Callable] = None
) -> List[Any]:
    """Play one rep group in lockstep and reduce per rep (worker-side)."""
    results = play_rep_batch(specs)
    if reduce is None:
        return [_default_record(spec, result) for spec, result in zip(specs, results)]
    return [reduce(spec, result) for spec, result in zip(specs, results)]


def _group_reps(
    specs: Sequence[GameSpec], max_width: Optional[int]
) -> List[List[GameSpec]]:
    """Chunk *consecutive* same-cell specs into rep groups.

    Grid expansion keeps a cell's repetitions adjacent, so consecutive
    grouping recovers exactly the rep axis; arbitrary spec lists degrade
    gracefully to singleton groups.  ``max_width`` caps the lockstep
    width (``None`` = unbounded).  Non-game cells (``TaskSpec``) have no
    lockstep engine and always form singleton groups.
    """
    groups: List[List[GameSpec]] = []
    current_key = None
    for spec in specs:
        key = rep_group_key(spec) if isinstance(spec, GameSpec) else None
        full = (
            max_width is not None
            and groups
            and len(groups[-1]) >= max_width
        )
        if (
            groups
            and not full
            and key is not None
            and current_key is not None
            and rep_keys_equal(key, current_key)
        ):
            groups[-1].append(spec)
        else:
            groups.append([spec])
            current_key = key
    return groups


@dataclass(frozen=True)
class StrategyPair:
    """One named (collector, adversary) pairing of a sweep.

    ``tags`` are merged into every cell spawned from the pair — use them
    to carry scheme parameters (e.g. the mixed-strategy ``p``) into
    reducers and aggregation.
    """

    name: str
    collector: ComponentSpec
    adversary: ComponentSpec
    collector_name: Optional[str] = None
    adversary_name: Optional[str] = None
    tags: Mapping[str, Any] = field(default_factory=dict)


def cross_pairs(
    collectors: Mapping[str, ComponentSpec],
    adversaries: Mapping[str, ComponentSpec],
) -> Tuple[StrategyPair, ...]:
    """Full cross-product of named collector and adversary specs."""
    return tuple(
        StrategyPair(
            name=f"{cname}|{aname}",
            collector=cspec,
            adversary=aspec,
            collector_name=cname,
            adversary_name=aname,
        )
        for cname, cspec in collectors.items()
        for aname, aspec in adversaries.items()
    )


@dataclass(frozen=True)
class SweepGrid:
    """Declarative sweep: datasets × attack ratios × pairs × repetitions.

    ``seed`` is the root entropy; each cell receives
    ``SeedSequence(seed, spawn_key=(dataset_i, ratio_i, pair_i, rep))``,
    which is what ``SeedSequence.spawn`` would produce for that
    coordinate — deterministic, collision-free, and stable under
    re-expansion (unlike arithmetic seed mixing, which silently
    correlates cells whenever the linear combinations coincide).

    ``store_retained=False`` plays every cell on a lean board (running
    counts instead of per-round retained arrays) — the right choice
    whenever the reducer only emits summary records, e.g. the default
    :func:`summarize_game`.  Reducers that call ``retained_data()``
    need the default ``True``.
    """

    pairs: Sequence[StrategyPair]
    datasets: Sequence[str] = ("control",)
    attack_ratios: Sequence[float] = (0.2,)
    repetitions: int = 1
    rounds: int = 20
    batch_size: int = 100
    dataset_size: Optional[int] = None
    anchor: str = "reference"
    store_retained: bool = True
    injection_mode: str = "radial"
    injection_jitter: float = 0.01
    trimmer: ComponentSpec = field(
        default_factory=lambda: ComponentSpec(RadialTrimmer)
    )
    quality: Optional[ComponentSpec] = None
    judge: Optional[ComponentSpec] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("grid needs at least one strategy pair")
        if not self.datasets or not self.attack_ratios:
            raise ValueError("grid needs at least one dataset and one ratio")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    @property
    def n_cells(self) -> int:
        """Number of games the grid expands to."""
        return (
            len(self.datasets)
            * len(self.attack_ratios)
            * len(self.pairs)
            * self.repetitions
        )

    def expand(self) -> List[GameSpec]:
        """Flatten the grid into per-cell :class:`GameSpec` objects."""
        specs: List[GameSpec] = []
        for d_i, dataset in enumerate(self.datasets):
            for r_i, ratio in enumerate(self.attack_ratios):
                for p_i, pair in enumerate(self.pairs):
                    for rep in range(self.repetitions):
                        tags = {
                            "dataset": dataset,
                            "attack_ratio": float(ratio),
                            "pair": pair.name,
                            "collector": pair.collector_name or pair.name,
                            "adversary": pair.adversary_name or pair.name,
                            "rep": rep,
                        }
                        tags.update(pair.tags)
                        specs.append(
                            GameSpec(
                                collector=pair.collector,
                                adversary=pair.adversary,
                                dataset=dataset,
                                dataset_size=self.dataset_size,
                                attack_ratio=float(ratio),
                                injection_mode=self.injection_mode,
                                injection_jitter=self.injection_jitter,
                                trimmer=self.trimmer,
                                quality=self.quality,
                                judge=self.judge,
                                rounds=self.rounds,
                                batch_size=self.batch_size,
                                anchor=self.anchor,
                                store_retained=self.store_retained,
                                seed=np.random.SeedSequence(
                                    self.seed, spawn_key=(d_i, r_i, p_i, rep)
                                ),
                                tags=tags,
                            )
                        )
        return specs


@dataclass(frozen=True)
class SweepStats:
    """Cache accounting of one :meth:`SweepRunner.run` invocation."""

    total: int
    cached: int
    played: int
    #: Wall-clock seconds of the run (``None`` on synthesized stats,
    #: e.g. a ``scenario report`` replay that executed nothing).
    seconds: Optional[float] = None

    def describe(self) -> str:
        """One-line human summary (CLI status output)."""
        timing = "" if self.seconds is None else f" in {self.seconds:.2f}s"
        return (
            f"{self.total} cells: {self.cached} loaded from store, "
            f"{self.played} played{timing}"
        )

    def to_json(self) -> dict:
        """The stats as a JSON-ready document (``--stats-json``)."""
        return {
            "total": self.total,
            "cached": self.cached,
            "played": self.played,
            "seconds": self.seconds,
        }


class SweepRunner:
    """Executes sweep cells serially or across worker processes.

    Parameters
    ----------
    workers:
        ``1`` (default) plays every game in-process; ``N > 1`` fans the
        cells out over a ``ProcessPoolExecutor``.  Results are identical
        either way — specs are self-contained and collected in order.
    chunksize:
        Cells (or rep groups, under rep batching) handed to a worker per
        dispatch; defaults to ``ceil(n / (4 * workers))`` so each worker
        sees a few chunks (amortizing IPC) while the tail stays balanced.
    reduce:
        Picklable ``f(spec, result) -> record`` applied *inside* the
        worker, so only the (small) record crosses the process boundary.
        Defaults to :func:`summarize_game` for game cells; task cells
        (:class:`~repro.runtime.spec.TaskSpec`) pass their result
        through unreduced.
    rep_batch:
        Collapse the repetition axis into lockstep
        :class:`~repro.core.engine.BatchedCollectionGame` runs:
        consecutive specs that differ only in seed/tags (a sweep cell's
        repetitions) play as one batched game, byte-identical to the
        per-spec path.  ``None`` or ``1`` disables (default),
        ``"auto"`` batches every full rep group, an ``int >= 2`` caps
        the lockstep width.  Composes with ``workers``: groups — not
        individual cells — are what the process pool distributes.
    store:
        Optional :class:`~repro.runtime.store.ResultStore`.  When set,
        cells whose key is already stored are *not* played — their
        records load from disk — and every freshly played record is
        persisted as soon as it completes, so an interrupted sweep
        resumes from the stored prefix.  Records are always emitted in
        grid order (the order of ``specs``), never completion order, so
        fresh, warm-cache and resumed runs produce byte-identical
        outputs for any worker count.
    """

    def __init__(
        self,
        workers: int = 1,
        chunksize: Optional[int] = None,
        reduce: Optional[Callable[[GameSpec, GameResult], Any]] = None,
        rep_batch: Union[None, int, str] = None,
        store: Optional[Any] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.workers = int(workers)
        self.chunksize = chunksize
        self.reduce = reduce
        self.rep_batch = self._normalize_rep_batch(rep_batch)
        self.store = store
        #: :class:`SweepStats` of the most recent :meth:`run`.
        self.last_stats: Optional[SweepStats] = None
        #: Grid-order cell keys of the most recent store-backed
        #: :meth:`run` (``None`` without a store).  Spec hashing
        #: canonicalizes whole component recipes, so consumers that need
        #: the keys (e.g. scenario manifests) read them here instead of
        #: recomputing the pass.
        self.last_keys: Optional[List[str]] = None

    @staticmethod
    def _normalize_rep_batch(
        rep_batch: Union[None, bool, int, str]
    ) -> Optional[Union[int, str]]:
        """``None``/``1``/``"off"`` → None; ``"auto"``/int >= 2 pass."""
        if isinstance(rep_batch, bool):
            # True == 1 would silently *disable* batching; force the
            # explicit spellings instead.
            raise ValueError(
                "rep_batch takes None, 1, 'off', 'auto' or an int >= 2 — "
                "use 'auto' (not True) to enable"
            )
        if rep_batch in (None, 1, "off"):
            return None
        if rep_batch == "auto":
            return "auto"
        if isinstance(rep_batch, int) and rep_batch >= 2:
            return rep_batch
        raise ValueError(
            "rep_batch must be None, 1, 'off', 'auto', or an int >= 2"
        )

    def run(self, specs: Sequence[GameSpec]) -> List[Any]:
        """Play every spec and return one record per spec, in order.

        With a :class:`~repro.runtime.store.ResultStore` attached,
        already-stored cells are loaded instead of played, fresh records
        persist as soon as they complete, and the returned list is in
        the order of ``specs`` (grid-coordinate order) regardless of
        which cells came from the cache or in what order workers
        finished them.
        """
        specs = list(specs)
        started = time.perf_counter()
        if self.store is None:
            records = [record for _, record in self._iter_records(specs)]
            self.last_stats = SweepStats(
                len(specs), 0, len(specs),
                seconds=time.perf_counter() - started,
            )
            self.last_keys = None
            return records

        miss = object()
        keys = [self.store.key(spec, self.reduce) for spec in specs]
        self.last_keys = keys
        records = [self.store.load(key, miss) for key in keys]
        missing = [i for i, record in enumerate(records) if record is miss]
        for j, record in self._iter_records([specs[i] for i in missing]):
            i = missing[j]
            self.store.save(keys[i], record)
            records[i] = record
        self.last_stats = SweepStats(
            total=len(specs),
            cached=len(specs) - len(missing),
            played=len(missing),
            seconds=time.perf_counter() - started,
        )
        return records

    def _iter_records(self, specs: List[Any]) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, record)`` in submission order as cells finish.

        The index is the cell's position in ``specs``; yielding as the
        (ordered) results stream in is what lets :meth:`run` checkpoint
        every record immediately instead of after the whole sweep.
        """
        if not specs:
            return
        if self.rep_batch is not None:
            yield from self._iter_batched(specs)
            return
        if self.workers == 1:
            for index, spec in enumerate(specs):
                yield index, _run_cell(spec, self.reduce)
            return
        call = partial(_run_cell, reduce=self.reduce)
        chunksize = self.chunksize or max(
            1, math.ceil(len(specs) / (4 * self.workers))
        )
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(specs))
        ) as pool:
            yield from enumerate(pool.map(call, specs, chunksize=chunksize))

    def _iter_batched(self, specs: List[Any]) -> Iterator[Tuple[int, Any]]:
        """Rep-batched execution: one lockstep game per rep group."""
        max_width = None if self.rep_batch == "auto" else self.rep_batch
        groups = _group_reps(specs, max_width)
        index = 0
        if self.workers == 1:
            for group in groups:
                for record in _run_rep_group(group, self.reduce):
                    yield index, record
                    index += 1
            return
        call = partial(_run_rep_group, reduce=self.reduce)
        chunksize = self.chunksize or max(
            1, math.ceil(len(groups) / (4 * self.workers))
        )
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(groups))
        ) as pool:
            for group_records in pool.map(call, groups, chunksize=chunksize):
                for record in group_records:
                    yield index, record
                    index += 1

    def run_grid(self, grid: SweepGrid) -> List[Any]:
        """Expand and run a :class:`SweepGrid`."""
        return self.run(grid.expand())
