"""Sweep execution: grid expansion and supervised (optionally parallel) runs.

The runner is the shared execution layer the paper's experiments sit on:

1. :class:`SweepGrid` expands a declarative cross-product — datasets ×
   attack ratios × strategy pairs × repetitions — into a flat list of
   :class:`~repro.runtime.spec.GameSpec` cells, deriving one
   collision-free :class:`numpy.random.SeedSequence` per cell from the
   cell's *coordinates* (``spawn_key=(dataset, ratio, pair, rep)``), so
   results are reproducible and independent of expansion or execution
   order.
2. :class:`SweepRunner` plays the cells — serially, or fanned out over a
   ``ProcessPoolExecutor`` — and returns one record per cell *in grid
   order*.  Execution is *supervised*: every cell (or lockstep rep
   group) is an independently retryable work unit, so a worker killed
   mid-sweep (``BrokenProcessPool``) costs only the in-flight units —
   the pool is respawned and the lost cells replayed; transient cell
   exceptions retry with exponential backoff (``retries=``); hung cells
   are killed and replayed (``timeout=``); and under
   ``on_error="quarantine"`` a permanently failing cell emits a typed
   :class:`FailureRecord` in its grid slot instead of aborting the
   sweep.  Because every spec is self-contained (own seeds, own
   component recipes) and faults never change *what* a cell computes,
   ``workers=1`` and ``workers=N`` — with or without failures and
   retries along the way — produce byte-identical records.
3. A *reducer* — any picklable ``f(spec, result) -> record`` — turns the
   heavy in-worker :class:`~repro.core.engine.GameResult` (boards carry
   every retained row) into the small record that crosses the process
   boundary.  The default :func:`summarize_game` reducer emits a
   :class:`GameRecord` with the bookkeeping totals every experiment
   reports.

Failure-handling contract
-------------------------
``retries=N`` allows N re-executions of a unit after ordinary cell
exceptions or timeouts; worker crashes (SIGKILL, OOM) always get at
least one replay even at ``retries=0``, because the dying cell may not
be the one at fault — the whole in-flight window dies with the worker
pool and innocent units must not be charged.  ``timeout=`` is enforced
preemptively under ``workers>=2`` (the hung worker is killed); under
``workers=1`` it is checked after the cell returns (a best-effort soft
timeout — serial in-process execution cannot be preempted).  A unit
that exhausts its budget either aborts the sweep (``on_error="raise"``,
the default — the original exception propagates) or is *quarantined*:
its grid slots are filled with :class:`FailureRecord` values, the sweep
completes, and — with a store attached — a later run replays exactly
the quarantined cells, because no record of them was persisted.
"""

from __future__ import annotations

import math
import os
import signal
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.engine import GameResult
from ..core.trimming import RadialTrimmer
from .faults import FaultInjector, FaultPlan, WorkerKilled
from .spec import (
    ComponentSpec,
    GameSpec,
    TaskSpec,
    fusion_group_key,
    play_fused_batch,
    play_rep_batch,
    rep_group_key,
    rep_keys_equal,
)

__all__ = [
    "CellTimeoutError",
    "FailureRecord",
    "GameRecord",
    "StrategyPair",
    "SweepGrid",
    "SweepRunner",
    "SweepStats",
    "cross_pairs",
    "play_game",
    "summarize_game",
]


@dataclass(frozen=True)
class GameRecord:
    """Per-game summary record (the default reducer's output)."""

    tags: Mapping[str, Any]
    collector: str
    adversary: str
    rounds: int
    termination_round: Optional[int]
    n_collected: int
    n_retained: int
    n_poison_injected: int
    n_poison_retained: int
    poison_retained_fraction: float
    trimmed_fraction: float
    mean_trim_percentile: float

    def __getitem__(self, key: str) -> Any:
        """Dict-style access to tags, for aggregation convenience."""
        return self.tags[key]


class CellTimeoutError(RuntimeError):
    """A sweep cell exceeded the runner's per-cell ``timeout``."""


@dataclass(frozen=True)
class FailureRecord:
    """The typed record a quarantined cell emits in its grid slot.

    Carries everything needed to report, triage and retry the cell:
    its grid coordinate (position in the spec list handed to
    :meth:`SweepRunner.run`), the spec's tags, the failure class
    (``"error"``, ``"timeout"`` or ``"worker-crash"``), the final
    exception rendered as text, and how many attempts were made.
    Failure records are never persisted to a result store — a resumed
    run sees the cell as missing and replays it.
    """

    index: int
    tags: Mapping[str, Any]
    kind: str
    error: str
    attempts: int

    def __getitem__(self, key: str) -> Any:
        return self.tags[key]


def summarize_game(spec: GameSpec, result: GameResult) -> GameRecord:
    """The default reducer: compress a game into its bookkeeping totals.

    Reads the board's column arrays (never the per-round entry objects),
    so lockstep-sliced results summarize without materializing a single
    ``BoardEntry``.
    """
    cols = result.board.columns
    return GameRecord(
        tags=dict(spec.tags),
        collector=result.collector_name,
        adversary=result.adversary_name,
        rounds=result.rounds,
        termination_round=result.termination_round,
        n_collected=int(np.sum(cols.n_collected)),
        n_retained=int(np.sum(cols.n_retained)),
        n_poison_injected=int(np.sum(cols.n_poison_injected)),
        n_poison_retained=int(np.sum(cols.n_poison_retained)),
        poison_retained_fraction=result.poison_retained_fraction(),
        trimmed_fraction=result.trimmed_fraction(),
        mean_trim_percentile=float(np.mean(cols.trim_percentile)),
    )


def play_game(spec: GameSpec) -> GameResult:
    """Module-level (picklable) entry point: build and play one spec."""
    return spec.play()


def _default_record(spec: Union[GameSpec, TaskSpec], result: Any) -> Any:
    """Reducer-less record: summarize games, pass task results through."""
    if isinstance(spec, GameSpec):
        return summarize_game(spec, result)
    return result


def _run_cell(
    spec: Union[GameSpec, TaskSpec], reduce: Optional[Callable] = None
) -> Any:
    """Play one cell and reduce it in-process (worker-side)."""
    result = spec.play()
    if reduce is None:
        return _default_record(spec, result)
    return reduce(spec, result)


#: Same-cell runs at least this wide play through the batched engine
#: even inside a mixed fused group: ``build_batched_game`` shares the
#: stream/reference/lead builds across reps, which beats the fused
#: path's per-rep session onboarding long before lane width matters.
_MIN_FUSED_RUN = 8


def _run_rep_group(
    specs: Sequence[GameSpec], reduce: Optional[Callable] = None
) -> List[Any]:
    """Play one rep group in lockstep and reduce per rep (worker-side).

    Consecutive same-cell runs (one ``rep_group_key``) of at least
    :data:`_MIN_FUSED_RUN` reps play through the batched engine; the
    narrow remainder — different cells sharing only a fusion family —
    plays through the fused serving path.  Both are byte-identical to
    per-spec solo play.
    """
    runs: List[List[int]] = []
    current_key = None
    for i, spec in enumerate(specs):
        key = rep_group_key(spec)
        if runs and rep_keys_equal(key, current_key):
            runs[-1].append(i)
        else:
            runs.append([i])
            current_key = key
    results: List[Any] = [None] * len(specs)
    if len(runs) == 1:
        results = play_rep_batch(specs)
    else:
        fused: List[int] = []
        for slots in runs:
            if len(slots) >= _MIN_FUSED_RUN:
                batch = play_rep_batch([specs[s] for s in slots])
                for slot, result in zip(slots, batch, strict=False):
                    results[slot] = result
            else:
                fused.extend(slots)
        if fused:
            cohort = play_fused_batch([specs[s] for s in fused])
            for slot, result in zip(fused, cohort, strict=False):
                results[slot] = result
    if reduce is None:
        return [_default_record(spec, result) for spec, result in zip(specs, results, strict=False)]
    return [reduce(spec, result) for spec, result in zip(specs, results, strict=False)]


def _run_unit_task(
    grouped: bool,
    payload: Sequence[Any],
    reduce: Optional[Callable],
    indices: Sequence[int],
    attempt: int,
    injector: Optional[FaultInjector],
    allow_kill: bool,
) -> List[Any]:
    """Execute one supervised work unit (worker-side entry point).

    ``payload`` is a list of rep groups (``grouped=True``) or of
    individual cells; either way the returned record list aligns with
    the unit's flattened cell order.  The fault injector — when armed —
    strikes before any cell plays, so an injected failure never leaves
    a half-executed unit behind.
    """
    if injector is not None:
        for index in indices:
            injector.before_cell(index, attempt, allow_kill)
    if grouped:
        records: List[Any] = []
        for group in payload:
            records.extend(_run_rep_group(group, reduce))
        return records
    return [_run_cell(spec, reduce) for spec in payload]


#: Default lockstep width cap for cross-cell fused groups.  Same-cell
#: rep runs stay unbounded (the historical behavior); fused runs stop
#: absorbing further cells here so wide sweeps still fan out over
#: workers instead of collapsing into one giant serial cohort.
_FUSED_WIDTH = 64


def _group_reps(
    specs: Sequence[GameSpec], max_width: Optional[int]
) -> List[List[GameSpec]]:
    """Chunk *consecutive* lockstep-compatible specs into play groups.

    Grid expansion keeps a cell's repetitions adjacent, so consecutive
    grouping recovers exactly the rep axis; beyond that, consecutive
    *different* cells sharing a :func:`fusion_group_key` — neighboring
    ratios, strategy pairings or seeds of one sweep family — fuse into
    the same group (capped at ``max_width`` or :data:`_FUSED_WIDTH`).
    Arbitrary spec lists degrade gracefully to singleton groups.
    ``max_width`` caps the lockstep width (``None`` = unbounded for
    same-cell reps).  Non-game cells (``TaskSpec``) have no lockstep
    engine and always form singleton groups.
    """
    groups: List[List[GameSpec]] = []
    current_key = None
    current_fusion = None
    for spec in specs:
        is_game = isinstance(spec, GameSpec)
        key = rep_group_key(spec) if is_game else None
        fusion = fusion_group_key(spec) if is_game else None
        full = (
            max_width is not None
            and groups
            and len(groups[-1]) >= max_width
        )
        joinable = (
            bool(groups)
            and not full
            and key is not None
            and current_key is not None
        )
        if joinable and rep_keys_equal(key, current_key):
            groups[-1].append(spec)
        elif (
            joinable
            and rep_keys_equal(fusion, current_fusion)
            and len(groups[-1]) < (max_width or _FUSED_WIDTH)
        ):
            # A different cell of the same lockstep family: fuse, and
            # compare the *next* spec against this cell's rep key so a
            # following rep run keeps extending the group.
            groups[-1].append(spec)
            current_key = key
        else:
            groups.append([spec])
            current_key = key
            current_fusion = fusion
    return groups


class _Unit:
    """One dispatchable, independently retryable work item.

    ``offsets`` are the cells' positions in the spec list a
    ``_iter_records`` call received (emission slots); ``indices`` are
    their *grid coordinates* in the full sweep (fault-plan keys and
    :class:`FailureRecord` addresses) — the two differ on resumed runs,
    where only the missing cells are re-executed.
    """

    __slots__ = (
        "grouped", "payload", "offsets", "indices",
        "attempt", "ready_at", "kind",
    )

    def __init__(
        self,
        grouped: bool,
        payload: List[Any],
        offsets: List[int],
        indices: List[int],
    ) -> None:
        self.grouped = grouped
        self.payload = payload
        self.offsets = offsets
        self.indices = indices
        self.attempt = 0
        self.ready_at = 0.0
        self.kind = "error"

    def cells(self) -> List[Any]:
        """The unit's specs, flattened, aligned with ``offsets``."""
        if self.grouped:
            return [spec for group in self.payload for spec in group]
        return list(self.payload)


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every worker of a process pool (hung-cell enforcement).

    ``ProcessPoolExecutor`` cannot cancel a *running* call, so a cell
    that blew its deadline can only be stopped by killing the process
    under it — and since the executor does not expose which worker runs
    which future, the whole pool goes.  The supervisor then sees
    ``BrokenProcessPool`` semantics and replays the in-flight window.
    """
    processes = getattr(pool, "_processes", None) or {}
    for pid in list(processes):
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            pass


@dataclass(frozen=True)
class StrategyPair:
    """One named (collector, adversary) pairing of a sweep.

    ``tags`` are merged into every cell spawned from the pair — use them
    to carry scheme parameters (e.g. the mixed-strategy ``p``) into
    reducers and aggregation.
    """

    name: str
    collector: ComponentSpec
    adversary: ComponentSpec
    collector_name: Optional[str] = None
    adversary_name: Optional[str] = None
    tags: Mapping[str, Any] = field(default_factory=dict)


def cross_pairs(
    collectors: Mapping[str, ComponentSpec],
    adversaries: Mapping[str, ComponentSpec],
) -> Tuple[StrategyPair, ...]:
    """Full cross-product of named collector and adversary specs."""
    return tuple(
        StrategyPair(
            name=f"{cname}|{aname}",
            collector=cspec,
            adversary=aspec,
            collector_name=cname,
            adversary_name=aname,
        )
        for cname, cspec in collectors.items()
        for aname, aspec in adversaries.items()
    )


@dataclass(frozen=True)
class SweepGrid:
    """Declarative sweep: datasets × attack ratios × pairs × repetitions.

    ``seed`` is the root entropy; each cell receives
    ``SeedSequence(seed, spawn_key=(dataset_i, ratio_i, pair_i, rep))``,
    which is what ``SeedSequence.spawn`` would produce for that
    coordinate — deterministic, collision-free, and stable under
    re-expansion (unlike arithmetic seed mixing, which silently
    correlates cells whenever the linear combinations coincide).

    ``store_retained=False`` plays every cell on a lean board (running
    counts instead of per-round retained arrays) — the right choice
    whenever the reducer only emits summary records, e.g. the default
    :func:`summarize_game`.  Reducers that call ``retained_data()``
    need the default ``True``.
    """

    pairs: Sequence[StrategyPair]
    datasets: Sequence[str] = ("control",)
    attack_ratios: Sequence[float] = (0.2,)
    repetitions: int = 1
    rounds: int = 20
    batch_size: int = 100
    dataset_size: Optional[int] = None
    anchor: str = "reference"
    store_retained: bool = True
    injection_mode: str = "radial"
    injection_jitter: float = 0.01
    trimmer: ComponentSpec = field(
        default_factory=lambda: ComponentSpec(RadialTrimmer)
    )
    quality: Optional[ComponentSpec] = None
    judge: Optional[ComponentSpec] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("grid needs at least one strategy pair")
        if not self.datasets or not self.attack_ratios:
            raise ValueError("grid needs at least one dataset and one ratio")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    @property
    def n_cells(self) -> int:
        """Number of games the grid expands to."""
        return (
            len(self.datasets)
            * len(self.attack_ratios)
            * len(self.pairs)
            * self.repetitions
        )

    def expand(self) -> List[GameSpec]:
        """Flatten the grid into per-cell :class:`GameSpec` objects."""
        specs: List[GameSpec] = []
        for d_i, dataset in enumerate(self.datasets):
            for r_i, ratio in enumerate(self.attack_ratios):
                for p_i, pair in enumerate(self.pairs):
                    for rep in range(self.repetitions):
                        tags = {
                            "dataset": dataset,
                            "attack_ratio": float(ratio),
                            "pair": pair.name,
                            "collector": pair.collector_name or pair.name,
                            "adversary": pair.adversary_name or pair.name,
                            "rep": rep,
                        }
                        tags.update(pair.tags)
                        specs.append(
                            GameSpec(
                                collector=pair.collector,
                                adversary=pair.adversary,
                                dataset=dataset,
                                dataset_size=self.dataset_size,
                                attack_ratio=float(ratio),
                                injection_mode=self.injection_mode,
                                injection_jitter=self.injection_jitter,
                                trimmer=self.trimmer,
                                quality=self.quality,
                                judge=self.judge,
                                rounds=self.rounds,
                                batch_size=self.batch_size,
                                anchor=self.anchor,
                                store_retained=self.store_retained,
                                seed=np.random.SeedSequence(
                                    self.seed, spawn_key=(d_i, r_i, p_i, rep)
                                ),
                                tags=tags,
                            )
                        )
        return specs


@dataclass(frozen=True)
class SweepStats:
    """Cache and failure accounting of one :meth:`SweepRunner.run`."""

    total: int
    cached: int
    played: int
    #: Wall-clock seconds of the run (``None`` on synthesized stats,
    #: e.g. a ``scenario report`` replay that executed nothing).
    seconds: Optional[float] = None
    #: Cells whose execution permanently failed this run.
    failed: int = 0
    #: Cell re-executions performed (retries and crash replays).
    retried: int = 0
    #: Cells emitted as :class:`FailureRecord` (``on_error="quarantine"``).
    quarantined: int = 0

    def describe(self) -> str:
        """One-line human summary (CLI status output)."""
        timing = "" if self.seconds is None else f" in {self.seconds:.2f}s"
        text = (
            f"{self.total} cells: {self.cached} loaded from store, "
            f"{self.played} played{timing}"
        )
        if self.retried or self.quarantined:
            text += (
                f" ({self.retried} retried, {self.quarantined} quarantined)"
            )
        return text

    def to_json(self) -> dict:
        """The stats as a JSON-ready document (``--stats-json``)."""
        return {
            "total": self.total,
            "cached": self.cached,
            "played": self.played,
            "seconds": self.seconds,
            "failed": self.failed,
            "retried": self.retried,
            "quarantined": self.quarantined,
        }


class SweepRunner:
    """Executes sweep cells under supervision, serially or across processes.

    Parameters
    ----------
    workers:
        ``1`` (default) plays every game in-process; ``N > 1`` fans the
        cells out over a ``ProcessPoolExecutor``.  Results are identical
        either way — specs are self-contained and records are emitted by
        grid slot, never completion order.
    chunksize:
        Cells (or rep groups, under rep batching) handed to a worker per
        dispatch; defaults to ``ceil(n / (4 * workers))`` so each worker
        sees a few chunks (amortizing IPC) while the tail stays balanced.
        When per-cell supervision is active (``timeout``, ``retries``,
        quarantine or fault injection) dispatch is per cell/group so the
        failure unit is exactly one cell.
    reduce:
        Picklable ``f(spec, result) -> record`` applied *inside* the
        worker, so only the (small) record crosses the process boundary.
        Defaults to :func:`summarize_game` for game cells; task cells
        (:class:`~repro.runtime.spec.TaskSpec`) pass their result
        through unreduced.
    rep_batch:
        Collapse the repetition axis into lockstep
        :class:`~repro.core.engine.BatchedCollectionGame` runs:
        consecutive specs that differ only in seed/tags (a sweep cell's
        repetitions) play as one batched game, byte-identical to the
        per-spec path.  ``None`` or ``1`` disables (default),
        ``"auto"`` batches every full rep group, an ``int >= 2`` caps
        the lockstep width.  Composes with ``workers``: groups — not
        individual cells — are what the process pool distributes, and a
        rep group is a single retry/quarantine unit.
    store:
        Optional :class:`~repro.runtime.store.ResultStore`.  When set,
        cells whose key is already stored are *not* played — their
        records load from disk — and every freshly played record is
        persisted as soon as it completes, so an interrupted sweep
        resumes from the stored prefix.  Quarantined cells are *not*
        persisted: a later run replays exactly them.  Records are
        always emitted in grid order (the order of ``specs``), never
        completion order, so fresh, warm-cache and resumed runs produce
        byte-identical outputs for any worker count.
    timeout:
        Per-unit wall-clock budget in seconds.  With ``workers >= 2``
        a unit that blows it is killed preemptively (pool teardown +
        replay); with ``workers=1`` it is checked after the unit
        returns (soft).  ``None`` (default) disables.
    retries:
        Re-executions allowed per unit after an ordinary exception or a
        timeout, with exponential backoff.  Worker crashes always get
        ``max(1, retries)`` replays — see the module docstring.
    backoff:
        Base backoff delay in seconds; attempt ``k`` waits
        ``backoff * 2**(k-1)``, capped at 2s.
    on_error:
        ``"raise"`` (default): a unit that exhausts its budget aborts
        the sweep with the original exception.  ``"quarantine"``: its
        cells emit :class:`FailureRecord` values in their grid slots and
        the sweep completes; counts land on :class:`SweepStats` and the
        records on :attr:`last_failures`.
    faults:
        Optional :class:`~repro.runtime.faults.FaultInjector` (or bare
        :class:`~repro.runtime.faults.FaultPlan`) — the deterministic
        chaos harness.  Injected faults strike cell attempts and record
        writes but never change computed records.
    """

    def __init__(
        self,
        workers: int = 1,
        chunksize: Optional[int] = None,
        reduce: Optional[Callable[[GameSpec, GameResult], Any]] = None,
        rep_batch: Union[None, int, str] = None,
        store: Optional[Any] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        on_error: str = "raise",
        faults: Union[FaultInjector, FaultPlan, None] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be > 0 seconds (or None)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        if on_error not in ("raise", "quarantine"):
            raise ValueError("on_error must be 'raise' or 'quarantine'")
        self.workers = int(workers)
        self.chunksize = chunksize
        self.reduce = reduce
        self.rep_batch = self._normalize_rep_batch(rep_batch)
        self.store = store
        self.timeout = None if timeout is None else float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.on_error = on_error
        self.faults = (
            FaultInjector(faults) if isinstance(faults, FaultPlan) else faults
        )
        #: :class:`SweepStats` of the most recent :meth:`run`.
        self.last_stats: Optional[SweepStats] = None
        #: Grid-order cell keys of the most recent store-backed
        #: :meth:`run` (``None`` without a store).  Spec hashing
        #: canonicalizes whole component recipes, so consumers that need
        #: the keys (e.g. scenario manifests) read them here instead of
        #: recomputing the pass.
        self.last_keys: Optional[List[str]] = None
        #: Grid-order :class:`FailureRecord` list of the most recent
        #: :meth:`run` (empty when everything succeeded).
        self.last_failures: List[FailureRecord] = []
        self._counters: Dict[str, int] = {}

    @staticmethod
    def _normalize_rep_batch(
        rep_batch: Union[None, bool, int, str]
    ) -> Optional[Union[int, str]]:
        """``None``/``1``/``"off"`` → None; ``"auto"``/int >= 2 pass."""
        if isinstance(rep_batch, bool):
            # True == 1 would silently *disable* batching; force the
            # explicit spellings instead.
            raise ValueError(
                "rep_batch takes None, 1, 'off', 'auto' or an int >= 2 — "
                "use 'auto' (not True) to enable"
            )
        if rep_batch in (None, 1, "off"):
            return None
        if rep_batch == "auto":
            return "auto"
        if isinstance(rep_batch, int) and rep_batch >= 2:
            return rep_batch
        raise ValueError(
            "rep_batch must be None, 1, 'off', 'auto', or an int >= 2"
        )

    @property
    def _supervised(self) -> bool:
        """Whether per-cell failure handling is active (unit width 1)."""
        return (
            self.timeout is not None
            or self.retries > 0
            or self.on_error == "quarantine"
            or (self.faults is not None and self.faults.plan.active)
        )

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def run(self, specs: Sequence[Union[GameSpec, TaskSpec]]) -> List[Any]:
        """Play every spec and return one record per spec, in order.

        With a :class:`~repro.runtime.store.ResultStore` attached,
        already-stored cells are loaded instead of played, fresh records
        persist as soon as they complete, and the returned list is in
        the order of ``specs`` (grid-coordinate order) regardless of
        which cells came from the cache or in what order workers
        finished them.  Under ``on_error="quarantine"`` permanently
        failed cells hold :class:`FailureRecord` values (also collected
        on :attr:`last_failures`) and are never persisted.
        """
        specs = list(specs)
        started = time.perf_counter()
        self._counters = {"failed": 0, "retried": 0, "quarantined": 0}
        failures: List[FailureRecord] = []

        store = self.store
        if store is not None and self.faults is not None:
            store = self.faults.wrap_store(store)

        if store is None:
            records: List[Any] = [None] * len(specs)
            for offset, record in self._iter_records(
                specs, list(range(len(specs)))
            ):
                records[offset] = record
                if isinstance(record, FailureRecord):
                    failures.append(record)
            self.last_keys = None
            cached = 0
            missing_count = len(specs)
        else:
            miss = object()
            keys = [store.key(spec, self.reduce) for spec in specs]
            self.last_keys = keys
            records = [store.load(key, miss) for key in keys]
            missing = [i for i, record in enumerate(records) if record is miss]
            for offset, record in self._iter_records(
                [specs[i] for i in missing], missing
            ):
                i = missing[offset]
                if isinstance(record, FailureRecord):
                    failures.append(record)
                else:
                    store.save(keys[i], record)
                records[i] = record
            cached = len(specs) - len(missing)
            missing_count = len(missing)

        failures.sort(key=lambda failure: failure.index)
        self.last_failures = failures
        self.last_stats = SweepStats(
            total=len(specs),
            cached=cached,
            played=missing_count - self._counters["quarantined"],
            seconds=time.perf_counter() - started,
            failed=self._counters["failed"],
            retried=self._counters["retried"],
            quarantined=self._counters["quarantined"],
        )
        return records

    def run_grid(self, grid: SweepGrid) -> List[Any]:
        """Expand and run a :class:`SweepGrid`."""
        return self.run(grid.expand())

    # ------------------------------------------------------------------ #
    # unit construction
    # ------------------------------------------------------------------ #
    def _build_units(
        self, specs: List[Any], indices: List[int]
    ) -> List[_Unit]:
        """Carve the spec list into dispatchable work units.

        Supervised runs (and all serial runs) use one unit per cell or
        rep group — the failure/retry granularity; unsupervised parallel
        runs chunk several per unit to amortize IPC, exactly like the
        historical ``pool.map`` chunksize.
        """
        units: List[_Unit] = []
        per_unit = self._supervised or self.workers == 1
        if self.rep_batch is not None:
            max_width = None if self.rep_batch == "auto" else self.rep_batch
            groups = _group_reps(specs, max_width)
            items: List[Tuple[List[GameSpec], List[int]]] = []
            offset = 0
            for group in groups:
                items.append((group, list(range(offset, offset + len(group)))))
                offset += len(group)
            if per_unit:
                for group, offsets in items:
                    units.append(
                        _Unit(
                            True, [group], offsets,
                            [indices[o] for o in offsets],
                        )
                    )
            else:
                chunk = self.chunksize or max(
                    1, math.ceil(len(items) / (4 * self.workers))
                )
                for start in range(0, len(items), chunk):
                    block = items[start:start + chunk]
                    offsets = [o for _, offs in block for o in offs]
                    units.append(
                        _Unit(
                            True,
                            [group for group, _ in block],
                            offsets,
                            [indices[o] for o in offsets],
                        )
                    )
        elif per_unit:
            for offset, spec in enumerate(specs):
                units.append(
                    _Unit(False, [spec], [offset], [indices[offset]])
                )
        else:
            chunk = self.chunksize or max(
                1, math.ceil(len(specs) / (4 * self.workers))
            )
            for start in range(0, len(specs), chunk):
                offsets = list(range(start, min(start + chunk, len(specs))))
                units.append(
                    _Unit(
                        False,
                        [specs[o] for o in offsets],
                        offsets,
                        [indices[o] for o in offsets],
                    )
                )
        return units

    # ------------------------------------------------------------------ #
    # failure bookkeeping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _classify(exc: BaseException) -> str:
        if isinstance(exc, CellTimeoutError):
            return "timeout"
        if isinstance(exc, (WorkerKilled, BrokenProcessPool)):
            return "worker-crash"
        return "error"

    def _note_failure(self, unit: _Unit, exc: BaseException) -> str:
        """Charge one failed attempt; decide retry / quarantine / raise.

        Worker crashes get at least one replay even at ``retries=0``:
        a pool death takes the whole in-flight window with it, so the
        failing unit cannot be singled out and innocent cells must not
        abort the sweep.
        """
        unit.attempt += 1
        unit.kind = self._classify(exc)
        budget = (
            max(1, self.retries)
            if unit.kind == "worker-crash"
            else self.retries
        )
        if unit.attempt <= budget:
            self._counters["retried"] += len(unit.offsets)
            return "retry"
        self._counters["failed"] += len(unit.offsets)
        if self.on_error == "quarantine":
            self._counters["quarantined"] += len(unit.offsets)
            return "quarantine"
        return "raise"

    def _retry_delay(self, attempt: int) -> float:
        """Exponential backoff before re-executing a failed unit."""
        if self.backoff <= 0:
            return 0.0
        return min(2.0, self.backoff * (2.0 ** max(0, attempt - 1)))

    def _emit_quarantined(
        self, unit: _Unit, exc: BaseException
    ) -> Iterator[Tuple[int, FailureRecord]]:
        """Fill a permanently failed unit's grid slots with failure records."""
        error = f"{type(exc).__name__}: {exc}"
        for offset, index, spec in zip(
            unit.offsets, unit.indices, unit.cells()
        , strict=False):
            yield offset, FailureRecord(
                index=index,
                tags=dict(getattr(spec, "tags", {}) or {}),
                kind=unit.kind,
                error=error,
                attempts=unit.attempt,
            )

    # ------------------------------------------------------------------ #
    # execution loops
    # ------------------------------------------------------------------ #
    def _iter_records(
        self, specs: List[Any], indices: List[int]
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(offset, record)`` pairs as cells finish.

        ``offset`` is the cell's position in ``specs`` (the possibly
        partial list handed in); ``indices`` carries each cell's grid
        coordinate in the full sweep.  Yielding as results stream in is
        what lets :meth:`run` checkpoint every record immediately;
        completion order is *not* guaranteed — the caller places records
        by offset.
        """
        if not specs:
            return
        units = self._build_units(specs, indices)
        if self.workers == 1:
            yield from self._iter_serial(units)
        else:
            yield from self._iter_parallel(units)

    def _iter_serial(self, units: List[_Unit]) -> Iterator[Tuple[int, Any]]:
        for unit in units:
            yield from self._play_unit_serial(unit)

    def _play_unit_serial(self, unit: _Unit) -> Iterator[Tuple[int, Any]]:
        """Serial supervision: retry loop around one in-process unit."""
        while True:
            started = time.perf_counter()
            try:
                records = _run_unit_task(
                    unit.grouped, unit.payload, self.reduce, unit.indices,
                    unit.attempt, self.faults, allow_kill=False,
                )
                if self.timeout is not None:
                    elapsed = time.perf_counter() - started
                    if elapsed > self.timeout:
                        raise CellTimeoutError(
                            f"cell(s) {unit.indices} took {elapsed:.3f}s "
                            f"(timeout {self.timeout:g}s)"
                        )
            except Exception as exc:
                action = self._note_failure(unit, exc)
                if action == "retry":
                    time.sleep(self._retry_delay(unit.attempt))
                    continue
                if action == "quarantine":
                    yield from self._emit_quarantined(unit, exc)
                    return
                raise
            for offset, record in zip(unit.offsets, records, strict=False):
                yield offset, record
            return

    def _iter_parallel(self, units: List[_Unit]) -> Iterator[Tuple[int, Any]]:
        """Supervised pool execution: sliding window + crash/timeout replay.

        A window of at most ``workers`` units is in flight at a time (so
        dispatch time approximates start time, which is what makes the
        per-unit deadline meaningful).  Completed futures stream records
        out; failed units retry with backoff; a dead pool
        (``BrokenProcessPool`` — worker SIGKILL, OOM) or an enforced
        timeout tears the pool down, respawns it, and replays exactly
        the lost units.
        """
        width = min(self.workers, max(1, len(units)))
        pending: Deque[_Unit] = deque(units)
        backing_off: List[_Unit] = []
        inflight: Dict[Future, Tuple[_Unit, float]] = {}
        pool = ProcessPoolExecutor(max_workers=width)

        def respawn(old: ProcessPoolExecutor) -> ProcessPoolExecutor:
            old.shutdown(wait=False, cancel_futures=True)
            return ProcessPoolExecutor(max_workers=width)

        try:
            while pending or backing_off or inflight:
                now = time.monotonic()
                if backing_off:
                    ready = [u for u in backing_off if u.ready_at <= now]
                    if ready:
                        backing_off = [
                            u for u in backing_off if u.ready_at > now
                        ]
                        pending.extendleft(reversed(ready))
                while pending and len(inflight) < width:
                    unit = pending.popleft()
                    future = pool.submit(
                        _run_unit_task, unit.grouped, unit.payload,
                        self.reduce, unit.indices, unit.attempt, self.faults,
                        True,
                    )
                    inflight[future] = (unit, time.monotonic())
                if not inflight:
                    # Everything left is backing off; sleep to the next
                    # ready time instead of spinning.
                    wake = min(u.ready_at for u in backing_off)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue

                wait_timeout = None
                if self.timeout is not None:
                    deadline = (
                        min(started for _, started in inflight.values())
                        + self.timeout
                    )
                    wait_timeout = max(0.0, deadline - time.monotonic())
                done, _ = wait(
                    list(inflight),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )

                if not done:
                    # Deadline expired and nothing finished: a worker is
                    # hung.  Kill the pool; replay the window — the
                    # overdue units are charged, bystanders are not.
                    now = time.monotonic()
                    assert self.timeout is not None
                    overdue = {
                        future
                        for future, (_, started) in inflight.items()
                        if now - started >= self.timeout
                    }
                    if not overdue:
                        continue  # spurious wake-up; re-derive deadline
                    _kill_pool_workers(pool)
                    lost = list(inflight.items())
                    inflight.clear()
                    pool = respawn(pool)
                    for future, (unit, _started) in lost:
                        if future not in overdue:
                            pending.append(unit)
                            continue
                        exc: Exception = CellTimeoutError(
                            f"cell(s) {unit.indices} exceeded the "
                            f"{self.timeout:g}s timeout (attempt "
                            f"{unit.attempt}); worker killed"
                        )
                        action = self._note_failure(unit, exc)
                        if action == "retry":
                            unit.ready_at = (
                                time.monotonic()
                                + self._retry_delay(unit.attempt)
                            )
                            backing_off.append(unit)
                        elif action == "quarantine":
                            yield from self._emit_quarantined(unit, exc)
                        else:
                            raise exc
                    continue

                crashed: List[_Unit] = []
                for future in done:
                    unit, _started = inflight.pop(future)
                    try:
                        records = future.result()
                    except BrokenProcessPool:
                        crashed.append(unit)
                    except Exception as exc:
                        action = self._note_failure(unit, exc)
                        if action == "retry":
                            unit.ready_at = (
                                time.monotonic()
                                + self._retry_delay(unit.attempt)
                            )
                            backing_off.append(unit)
                        elif action == "quarantine":
                            yield from self._emit_quarantined(unit, exc)
                        else:
                            raise
                    else:
                        for offset, record in zip(unit.offsets, records, strict=False):
                            yield offset, record
                if crashed:
                    # The pool is dead; every still-inflight unit died
                    # with it.  Respawn and replay them all — crash
                    # attribution is impossible, so each gets charged a
                    # crash attempt (budget >= 1 even at retries=0).
                    crashed.extend(unit for unit, _ in inflight.values())
                    inflight.clear()
                    pool = respawn(pool)
                    for unit in crashed:
                        crash: Exception = WorkerKilled(
                            "a process pool worker died while cell(s) "
                            f"{unit.indices} were in flight"
                        )
                        action = self._note_failure(unit, crash)
                        if action == "retry":
                            unit.ready_at = (
                                time.monotonic()
                                + self._retry_delay(unit.attempt)
                            )
                            backing_off.append(unit)
                        elif action == "quarantine":
                            yield from self._emit_quarantined(unit, crash)
                        else:
                            raise crash
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
