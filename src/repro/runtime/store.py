"""Content-addressed result store: persistent, resumable sweep records.

Every sweep cell is fully determined by its spec — dataset name,
component recipes, ``SeedSequence`` root, engine parameters — plus the
reducer that turned the game into a record and the code version that
played it.  This module canonicalizes that description into a stable
SHA-256 *cell key* (:func:`spec_hash`) and persists one small record
file per key (:class:`ResultStore`), which is what makes sweeps

* **cacheable** — a re-run of an already-played cell loads the stored
  record instead of executing the game: a warm-cache invocation replays
  an entire experiment from disk with zero game executions;
* **resumable** — :class:`~repro.runtime.runner.SweepRunner` persists
  each record as it completes, so an interrupted sweep resumes from the
  stored prefix and produces output byte-identical to an uninterrupted
  run, regardless of completion order;
* **safe** — records are written atomically (temp file + ``os.replace``)
  and carry a payload checksum: a corrupt, truncated or stale-format
  file is treated as a cache miss and recomputed, never served.

Keys are content-addressed: any change to a component kwarg, a seed, the
dataset, the reducer or the package version changes the key, so stale
records can never be confused with current ones.  The store layout is::

    <root>/objects/<key[:2]>/<key>.json    one record per cell key
    <root>/manifests/<name>.json           scenario manifests (grid-order
                                           key lists; see repro.scenarios)

Records are encoded as JSON where possible (plain dicts, numbers,
strings, :class:`~repro.runtime.runner.GameRecord`) so cache entries
stay human-inspectable, with a pickle fallback for arbitrary reducer
outputs (e.g. dataclasses carrying ndarrays).
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from functools import partial
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np

from .spec import ComponentSpec, GameSpec, TaskSpec

__all__ = [
    "ResultStore",
    "canonical_json",
    "spec_fingerprint",
    "spec_hash",
]

#: On-disk envelope format; bump to invalidate every existing record.
STORE_FORMAT = 1


def _code_version() -> str:
    """The package version mixed into every cell key (lazy import)."""
    from repro import __version__

    return __version__


def _callable_fingerprint(fn: Callable) -> str:
    """``module:qualname`` of an importable callable; rejects closures."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<lambda>" in qualname or "<locals>" in qualname:
        raise TypeError(
            f"cannot fingerprint non-importable callable {fn!r}; store keys "
            "need module-level factories and reducers"
        )
    return f"{module}:{qualname}"


def _canon(value: Any) -> Any:
    """Canonical JSON-able form of one spec ingredient.

    The mapping is injective on the supported types (tagged wrapper
    objects keep e.g. an ndarray distinct from the dict that mimics it),
    and stable across processes and platforms — the property the
    cross-process hash test pins down.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.generic):
        return _canon(value.item())
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return {
            "__ndarray__": {
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
            }
        }
    if isinstance(value, np.random.SeedSequence):
        return {
            "__seed_sequence__": {
                "entropy": _canon(value.entropy),
                "spawn_key": [int(k) for k in value.spawn_key],
            }
        }
    if isinstance(value, ComponentSpec):
        return {
            "__component__": {
                "factory": _callable_fingerprint(value.factory),
                "kwargs": {
                    str(k): _canon(v) for k, v in value.kwargs.items()
                },
                "seeded": bool(value.seeded),
            }
        }
    if isinstance(value, partial):
        return {
            "__partial__": {
                "func": _canon(value.func),
                "args": [_canon(v) for v in value.args],
                "keywords": {
                    str(k): _canon(v) for k, v in value.keywords.items()
                },
            }
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": {
                "type": _callable_fingerprint(type(value)),
                "fields": {
                    f.name: _canon(getattr(value, f.name))
                    for f in dataclasses.fields(value)
                },
            }
        }
    if isinstance(value, Mapping):
        return {str(k): _canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if callable(value):
        return {"__callable__": _callable_fingerprint(value)}
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for a store key"
    )


def spec_fingerprint(spec: Union[GameSpec, TaskSpec]) -> Any:
    """Canonical (JSON-able) description of one sweep cell.

    Seeds are normalized through ``seed_sequence()`` so an integer seed
    and the equivalent :class:`~numpy.random.SeedSequence` fingerprint
    identically; tags are included because stored records embed them.
    """
    if isinstance(spec, GameSpec):
        return {
            "__game_spec__": {
                "collector": _canon(spec.collector),
                "adversary": _canon(spec.adversary),
                "dataset": spec.dataset,
                "dataset_size": _canon(spec.dataset_size),
                "attack_ratio": float(spec.attack_ratio),
                "injection_mode": spec.injection_mode,
                "injection_jitter": float(spec.injection_jitter),
                "trimmer": _canon(spec.trimmer),
                "quality": _canon(spec.quality),
                "judge": _canon(spec.judge),
                "rounds": int(spec.rounds),
                "batch_size": int(spec.batch_size),
                "anchor": spec.anchor,
                "store_retained": bool(spec.store_retained),
                "seed": _canon(spec.seed_sequence()),
                "tags": _canon(dict(spec.tags)),
            }
        }
    if isinstance(spec, TaskSpec):
        return {
            "__task_spec__": {
                "task": _canon(spec.task),
                "seed": _canon(spec.seed_sequence()),
                "tags": _canon(dict(spec.tags)),
            }
        }
    raise TypeError(f"cannot fingerprint {type(spec).__name__!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON rendering (sorted keys, tight separators)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def spec_hash(
    spec: Union[GameSpec, TaskSpec],
    reducer: Optional[Callable] = None,
    code_version: Optional[str] = None,
) -> str:
    """Stable SHA-256 cell key of (spec, reducer, code version).

    The reducer is part of the key because the *record* is its output:
    two sweeps over identical game cells but different reducers (e.g.
    the tournament payoff reducer vs the k-means reducer) must never
    share cache entries.  ``functools.partial`` reducers hash their
    bound arguments too (ndarrays by content digest).
    """
    payload = {
        "format": STORE_FORMAT,
        "code_version": (
            _code_version() if code_version is None else str(code_version)
        ),
        "spec": spec_fingerprint(spec),
        "reducer": None if reducer is None else _canon(reducer),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# record codec: JSON where possible, pickle fallback, always checksummed
# --------------------------------------------------------------------- #
_GAME_RECORD_TAG = "__game_record__"


def _to_jsonable(record: Any) -> Any:
    """Strict JSON encoding of a record; raises TypeError if impossible."""
    from .runner import GameRecord

    if record is None or isinstance(record, (bool, int, str)):
        return record
    if isinstance(record, float):
        return float(record)
    if isinstance(record, np.generic):
        return _to_jsonable(record.item())
    if isinstance(record, GameRecord):
        fields = {
            f.name: _to_jsonable(getattr(record, f.name))
            for f in dataclasses.fields(record)
        }
        return {_GAME_RECORD_TAG: fields}
    if isinstance(record, Mapping):
        if any(not isinstance(k, str) for k in record):
            raise TypeError("non-string mapping keys need the pickle codec")
        if any(k.startswith("__") and k.endswith("__") for k in record):
            raise TypeError("dunder-tagged keys need the pickle codec")
        return {k: _to_jsonable(v) for k, v in record.items()}
    if isinstance(record, (list, tuple)):
        return [_to_jsonable(v) for v in record]
    raise TypeError(f"{type(record).__name__!r} needs the pickle codec")


def _from_jsonable(data: Any) -> Any:
    from .runner import GameRecord

    if isinstance(data, dict):
        if set(data) == {_GAME_RECORD_TAG}:
            fields = {
                k: _from_jsonable(v) for k, v in data[_GAME_RECORD_TAG].items()
            }
            return GameRecord(**fields)
        return {k: _from_jsonable(v) for k, v in data.items()}
    if isinstance(data, list):
        return [_from_jsonable(v) for v in data]
    return data


def _encode_body(record: Any) -> dict:
    try:
        return {"codec": "json", "data": _to_jsonable(record)}
    except TypeError:
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        return {"codec": "pickle", "data": base64.b64encode(blob).decode("ascii")}


def _decode_body(body: dict) -> Any:
    codec = body["codec"]
    if codec == "json":
        return _from_jsonable(body["data"])
    if codec == "pickle":
        return pickle.loads(base64.b64decode(body["data"].encode("ascii")))
    raise ValueError(f"unknown record codec {codec!r}")


class ResultStore:
    """One-record-per-cell persistent cache under a root directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    code_version:
        Version string mixed into every key; defaults to the installed
        package version, so upgrading the code invalidates the cache
        wholesale instead of serving records from old physics.
    durable:
        ``True`` fsyncs every record/manifest write (file *and* parent
        directory) before the atomic rename, so a completed save
        survives a machine crash — not just a process crash.  Off by
        default: sweeps are resumable anyway, and fsync per record is
        expensive.
    reap_tmp_after:
        Age threshold (seconds) for the orphaned-temp-file reaper.  A
        SIGKILLed process can leave ``.tmp`` files behind (``mkstemp``
        happened, ``os.replace`` never did); the store sweeps any older
        than this on init.  ``None`` disables reaping.
    """

    def __init__(
        self,
        root: Union[str, Path],
        code_version: Optional[str] = None,
        durable: bool = False,
        reap_tmp_after: Optional[float] = 3600.0,
    ):
        self.root = Path(root)
        self.code_version = (
            _code_version() if code_version is None else str(code_version)
        )
        self.durable = bool(durable)
        self.reap_tmp_after = reap_tmp_after
        if reap_tmp_after is not None and self.root.is_dir():
            self.reap_temp_files(reap_tmp_after)

    # -------------------------------------------------------------- #
    # keys and paths
    # -------------------------------------------------------------- #
    def key(
        self,
        spec: Union[GameSpec, TaskSpec],
        reducer: Optional[Callable] = None,
    ) -> str:
        """Cell key of a spec under this store's code version."""
        return spec_hash(spec, reducer=reducer, code_version=self.code_version)

    def record_path(self, key: str) -> Path:
        """On-disk location of one record (two-level fan-out)."""
        return self.root / "objects" / key[:2] / f"{key}.json"

    def manifest_path(self, name: str) -> Path:
        """On-disk location of a named manifest."""
        return self.root / "manifests" / f"{name}.json"

    # -------------------------------------------------------------- #
    # atomic writes and temp-file hygiene
    # -------------------------------------------------------------- #
    def _write_atomic(
        self, path: Path, document: Any, prefix: str, indent: Optional[int]
    ) -> None:
        """Write a JSON document via temp file + ``os.replace``.

        Under ``durable=True`` the temp file is flushed and fsynced
        before the rename, and the parent directory fsynced after, so
        the completed write survives power loss — otherwise the rename
        alone guarantees readers only ever see whole documents.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=prefix, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, indent=indent, sort_keys=bool(indent))
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
            if self.durable:
                dir_fd = os.open(path.parent, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def reap_temp_files(self, max_age_seconds: float = 3600.0) -> int:
        """Delete orphaned ``.tmp`` files older than the threshold.

        A process SIGKILLed between ``mkstemp`` and ``os.replace``
        leaks its temp file forever; this sweeps them.  The age floor
        keeps the reaper from racing a *live* writer (concurrent sweeps
        share a store), and every error is ignored — another process
        may legitimately have won the unlink.  Returns the number of
        files removed.
        """
        cutoff = time.time() - max_age_seconds
        reaped = 0
        for subdir in ("objects", "manifests"):
            base = self.root / subdir
            if not base.is_dir():
                continue
            for tmp in base.rglob("*.tmp"):
                try:
                    if tmp.stat().st_mtime < cutoff:
                        tmp.unlink()
                        reaped += 1
                except OSError:
                    continue
        return reaped

    # -------------------------------------------------------------- #
    # records
    # -------------------------------------------------------------- #
    def save(self, key: str, record: Any) -> None:
        """Atomically persist one record under its cell key."""
        body = _encode_body(record)
        envelope = {
            "format": STORE_FORMAT,
            "key": key,
            "sha256": hashlib.sha256(
                canonical_json(body).encode("utf-8")
            ).hexdigest(),
            "body": body,
        }
        self._write_atomic(
            self.record_path(key), envelope, prefix=f".{key[:8]}-", indent=None
        )

    def load(self, key: str, default: Any = None) -> Any:
        """Load one record; *any* validation failure is a cache miss.

        Truncated writes, hand-edited files, checksum mismatches, format
        bumps and undecodable payloads all return ``default`` — the
        runner then simply recomputes and overwrites the entry.  The
        except tuple is deliberately wide: a checksum-valid *pickle*
        body can still fail to materialize when the class it references
        was renamed or moved since the record was written
        (``AttributeError`` / ``ModuleNotFoundError``), and those are
        misses too, not crashes.
        """
        path = self.record_path(key)
        try:
            with open(path, "r") as handle:
                envelope = json.load(handle)
            if envelope.get("format") != STORE_FORMAT:
                return default
            if envelope.get("key") != key:
                return default
            body = envelope["body"]
            digest = hashlib.sha256(
                canonical_json(body).encode("utf-8")
            ).hexdigest()
            if envelope.get("sha256") != digest:
                return default
            return _decode_body(body)
        except (
            OSError,
            ValueError,  # covers json decode + UnicodeDecodeError
            KeyError,
            IndexError,
            TypeError,
            AttributeError,
            ImportError,  # covers ModuleNotFoundError
            EOFError,
            pickle.UnpicklingError,
        ):
            return default

    def __contains__(self, key: str) -> bool:
        sentinel = object()
        return self.load(key, sentinel) is not sentinel

    def count(self) -> int:
        """Number of record files currently on disk (valid or not)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))

    # -------------------------------------------------------------- #
    # manifests (scenario-level record indexes; see repro.scenarios)
    # -------------------------------------------------------------- #
    def save_manifest(self, name: str, payload: Mapping[str, Any]) -> None:
        """Atomically persist a named manifest (a small JSON document)."""
        self._write_atomic(
            self.manifest_path(name),
            dict(payload),
            prefix=f".{name[:24]}-",
            indent=2,
        )

    def load_manifest(self, name: str) -> Optional[dict]:
        """Load a named manifest, or ``None`` if absent/unreadable."""
        try:
            with open(self.manifest_path(name), "r") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def delete_manifest(self, name: str) -> bool:
        """Remove a named manifest if present; True when a file went away."""
        try:
            os.unlink(self.manifest_path(name))
            return True
        except OSError:
            return False
