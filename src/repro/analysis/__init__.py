"""Static analysis for the reproduction's byte-identity contract.

Two layers:

* the **AST determinism linter** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`) — rules REP001–REP005 over source text;
* the **registry conformance auditor**
  (:mod:`repro.analysis.conformance`) — imports the live registries and
  checks the protocol lattice (batched lanes, export/import
  round-trips, ComponentSpec picklability and cross-process fingerprint
  stability, score-kind commensurability, snapshot-envelope coverage).

Run both with ``repro lint`` or ``python -m repro.analysis``.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, Severity
from .engine import LintEngine, ModuleContext, Rule, iter_python_files
from .rules import DEFAULT_RULE_CLASSES, all_rules

__all__ = [
    "Diagnostic",
    "Severity",
    "LintEngine",
    "ModuleContext",
    "Rule",
    "iter_python_files",
    "DEFAULT_RULE_CLASSES",
    "all_rules",
    "default_engine",
]


def default_engine() -> LintEngine:
    """A :class:`LintEngine` loaded with the default rule set."""
    return LintEngine(all_rules())
