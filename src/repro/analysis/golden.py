"""CONF007 — golden-transcript audit of the round decision loop.

The static rules prove structural properties; this module pins the
*numbers*.  A frozen per-round decision transcript for a small canonical
collector × adversary × judge matrix is checked into
``tests/analysis/golden/transcript.json`` and replayed byte-for-byte by
every ``repro lint`` run: each cell replays its rounds from the same
seeds and must reproduce every threshold, accept count, judge verdict
and per-round state fingerprint (a SHA-256 over the canonical
``state_dict()`` rendering, which covers the exported RNG bit-state of
every seeded component).  Any drift in the decision loop — a reordered
draw, a changed tie-break, a float contraction — lands here as a
CONF007 error naming the first diverging cell, round and field.

Regenerating after an *intentional* semantic change::

    PYTHONPATH=src python -m repro lint --update-golden

and commit the refreshed transcript together with the change that
explains it.  The deliberate-regression test in
``tests/analysis/test_golden.py`` perturbs one RNG draw and asserts the
audit catches it, so a stale transcript cannot rot silently.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from .diagnostics import Diagnostic, Severity

__all__ = [
    "GOLDEN_FORMAT",
    "GOLDEN_PATH",
    "build_transcript",
    "record_golden",
    "replay_golden",
]

GOLDEN_FORMAT = "repro.golden/1"

#: The checked-in transcript replayed by ``repro lint``.
GOLDEN_PATH = (
    Path(__file__).resolve().parents[3]
    / "tests"
    / "analysis"
    / "golden"
    / "transcript.json"
)

#: Entropy root for every golden stream; cells derive children from it.
_GOLDEN_ENTROPY = 20240607
_ROUNDS = 12
_BATCH = 64
_REFERENCE = 512

_HINT = (
    "if the decision loop changed intentionally, regenerate with "
    "`repro lint --update-golden` and commit the transcript with the "
    "change; otherwise the decision loop drifted — bisect the diff"
)


def _cells() -> List[Tuple[str, Callable[[], Any]]]:
    """The canonical (cell key, session factory) matrix.

    Cells are chosen to exercise every seeded decision path: a seeded
    collector (generous forgiveness draws), seeded adversaries (mixed
    equilibrium draws, uniform range draws), both judge families
    (noisy-position flips and band-excess noise), and the injector's
    jitter stream in every cell.
    """
    from ..core.engine import BandExcessJudge, NoisyPositionJudge
    from ..core.session import GameSession
    from ..core.strategies.adversaries import (
        JustBelowAdversary,
        MixedAdversary,
        UniformRangeAdversary,
    )
    from ..core.strategies.elastic import ElasticCollector
    from ..core.strategies.titfortat import (
        MixedStrategyTrigger,
        TitForTatCollector,
    )
    from ..core.strategies.variants import GenerousCollector
    from ..core.trimming import ValueTrimmer
    from ..streams.injection import PoisonInjector

    def reference() -> np.ndarray:
        rng = np.random.default_rng(
            np.random.SeedSequence(_GOLDEN_ENTROPY).spawn(1)[0]
        )
        return rng.normal(0.0, 1.0, size=_REFERENCE)

    def open_cell(collector, adversary, judge, seed: int):
        return GameSession.open(
            collector=collector,
            trimmer=ValueTrimmer(),
            reference=reference(),
            adversary=adversary,
            injector=PoisonInjector(
                attack_ratio=0.25, jitter=0.01, seed=seed
            ),
            judge=judge,
            horizon=_ROUNDS,
        )

    def generous_mixed_noisy():
        return open_cell(
            GenerousCollector(t_th=0.9, generosity=0.3, seed=101),
            MixedAdversary(p=0.6, seed=102),
            NoisyPositionJudge(boundary=0.9, seed=103),
            seed=104,
        )

    def titfortat_uniform_band():
        return open_cell(
            TitForTatCollector(
                t_th=0.9,
                trigger=MixedStrategyTrigger(
                    equilibrium_probability=0.7, warmup=3
                ),
            ),
            UniformRangeAdversary(0.9, 1.0, seed=202),
            BandExcessJudge(noise_sigma=0.02, seed=203),
            seed=204,
        )

    def elastic_justbelow_band():
        return open_cell(
            ElasticCollector(t_th=0.9, k=0.5),
            JustBelowAdversary(initial_threshold=0.95),
            BandExcessJudge(noise_sigma=0.0, seed=303),
            seed=304,
        )

    return [
        ("generous(0.9)/mixed(0.6)/noisy(0.9)", generous_mixed_noisy),
        ("titfortat-mixed(0.7)/uniform[0.9,1.0]/band", titfortat_uniform_band),
        ("elastic(0.9,0.5)/just-below(0.95)/band", elastic_justbelow_band),
    ]


def _state_fingerprint(session: Any) -> str:
    from ..runtime.store import _canon, canonical_json

    rendered = canonical_json(_canon(session.state_dict()))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def build_transcript() -> Dict[str, Any]:
    """Replay every canonical cell and return the transcript document."""
    cells: List[Dict[str, Any]] = []
    for index, (key, factory) in enumerate(_cells()):
        session = factory()
        benign_rng = np.random.default_rng(
            np.random.SeedSequence(_GOLDEN_ENTROPY).spawn(index + 2)[0]
        )
        rounds: List[Dict[str, Any]] = []
        for _ in range(_ROUNDS):
            batch = benign_rng.normal(0.0, 1.0, size=_BATCH)
            decision = session.submit(batch)
            rounds.append(
                {
                    "index": decision.index,
                    "threshold": float(decision.threshold),
                    "injection_percentile": (
                        None
                        if decision.injection_percentile is None
                        else float(decision.injection_percentile)
                    ),
                    "n_retained": decision.n_retained,
                    "n_poison_injected": decision.n_poison_injected,
                    "n_poison_retained": decision.n_poison_retained,
                    "betrayal": decision.betrayal,
                    "quality": float(decision.quality),
                    "state_sha256": _state_fingerprint(session),
                }
            )
        cells.append({"cell": key, "rounds": rounds})
    return {
        "format": GOLDEN_FORMAT,
        "entropy": _GOLDEN_ENTROPY,
        "cells": cells,
    }


def _render(transcript: Dict[str, Any]) -> str:
    from ..runtime.store import canonical_json

    return canonical_json(transcript) + "\n"


def record_golden(path: "Path | None" = None) -> Path:
    """(Re)write the golden transcript file and return its path."""
    path = GOLDEN_PATH if path is None else path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(_render(build_transcript()), encoding="utf-8")
    return path


def _first_divergence(
    expected: Dict[str, Any], actual: Dict[str, Any]
) -> str:
    if expected.get("format") != actual.get("format"):
        return (
            f"format tag {actual.get('format')!r} != "
            f"{expected.get('format')!r}"
        )
    exp_cells = expected.get("cells", [])
    act_cells = actual.get("cells", [])
    if [c.get("cell") for c in exp_cells] != [
        c.get("cell") for c in act_cells
    ]:
        return "the canonical cell matrix changed"
    for exp_cell, act_cell in zip(exp_cells, act_cells, strict=False):
        for exp_round, act_round in zip(
            exp_cell.get("rounds", []), act_cell.get("rounds", [])
        , strict=False):
            for field in sorted(set(exp_round) | set(act_round)):
                if exp_round.get(field) != act_round.get(field):
                    return (
                        f"cell `{exp_cell.get('cell')}` round "
                        f"{exp_round.get('index')}: {field} = "
                        f"{act_round.get(field)!r}, golden "
                        f"{exp_round.get(field)!r}"
                    )
        if len(exp_cell.get("rounds", [])) != len(act_cell.get("rounds", [])):
            return f"cell `{exp_cell.get('cell')}`: round count changed"
    return "transcripts differ only in rendering"


def replay_golden(path: "Path | None" = None) -> List[Diagnostic]:
    """Replay the matrix against the checked-in transcript.

    Returns CONF007 findings: one when the transcript file is missing
    or unparseable, one naming the first diverging cell/round/field
    when the replay drifts, and none when the replay is byte-identical.
    """
    path = GOLDEN_PATH if path is None else path

    def finding(message: str) -> Diagnostic:
        return Diagnostic(
            path=str(path),
            line=1,
            column=0,
            rule="CONF007",
            severity=Severity.ERROR,
            message=message,
            hint=_HINT,
        )

    try:
        golden_text = path.read_text(encoding="utf-8")
    except OSError:
        return [
            finding(
                "golden transcript is missing — the decision loop has no "
                "pinned reference"
            )
        ]
    try:
        golden = json.loads(golden_text)
    except ValueError:
        return [finding("golden transcript is not valid JSON")]

    actual = build_transcript()
    if _render(actual) == golden_text:
        return []
    return [
        finding(
            "golden transcript replay diverged: "
            + _first_divergence(golden, actual)
        )
    ]
