"""Diagnostic records shared by the linter and the conformance auditor.

One finding = one :class:`Diagnostic`: a stable rule id (``REP001`` …
for the AST linter, ``CONF001`` … for the registry auditor), a severity,
a location, a one-line message and a *fix hint* — the "what to do about
it" half every finding must carry so an audit failure is actionable
without archaeology.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["Severity", "Diagnostic"]


class Severity(enum.Enum):
    """How hard a finding gates: errors fail the audit, warnings inform."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One linter or auditor finding, ordered by location for stable output."""

    path: str
    line: int
    column: int
    rule: str
    severity: Severity
    message: str
    hint: Optional[str] = None

    def to_dict(self) -> dict:
        """Plain-data form for ``repro lint --format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "hint": self.hint,
        }

    def format(self, show_hint: bool = True) -> str:
        """``path:line:col: RULE [severity] message (fix: hint)``."""
        text = (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )
        if show_hint and self.hint:
            text += f" (fix: {self.hint})"
        return text
