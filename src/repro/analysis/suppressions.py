"""``# repro: noqa[...]`` suppression comments.

Two scopes:

* **line** — ``# repro: noqa[REP001]`` (or ``noqa[REP001,REP003]``) on a
  line suppresses the named rules for findings anchored to that line;
  a bare ``# repro: noqa`` suppresses every rule on the line.
* **file** — ``# repro: noqa-file[REP001]`` anywhere in the file (by
  convention near the top) suppresses the named rules for the whole
  file; the bare form silences the file entirely.

Suppressions are part of the audit contract: a ``noqa`` must sit next to
a comment stating the constraint that justifies it (reviewed by humans —
the linter only mechanizes the *finding*, not the justification).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence

__all__ = [
    "Suppressions",
    "parse_suppressions",
    "propagate_def_suppressions",
]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?\s*(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?",
    re.IGNORECASE,
)

#: Sentinel rule set meaning "every rule".
_ALL: FrozenSet[str] = frozenset({"*"})


@dataclass(frozen=True)
class Suppressions:
    """Parsed suppression state of one source file."""

    line_rules: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_rules: FrozenSet[str] = frozenset()

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced at ``line`` (1-based)."""
        if "*" in self.file_rules or rule in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        if rules is None:
            return False
        return "*" in rules or rule in rules


def _parse_rules(raw: str) -> FrozenSet[str]:
    rules = frozenset(
        part.strip().upper() for part in raw.split(",") if part.strip()
    )
    return rules or _ALL


def parse_suppressions(lines: Sequence[str]) -> Suppressions:
    """Extract the suppression table from a file's source lines."""
    line_rules: Dict[int, FrozenSet[str]] = {}
    file_rules: FrozenSet[str] = frozenset()
    for lineno, text in enumerate(lines, start=1):
        if "noqa" not in text:
            continue
        match = _NOQA.search(text)
        if match is None:
            continue
        rules = (
            _parse_rules(match.group("rules"))
            if match.group("rules")
            else _ALL
        )
        if match.group("file"):
            file_rules = file_rules | rules
        else:
            line_rules[lineno] = line_rules.get(lineno, frozenset()) | rules
    return Suppressions(line_rules=line_rules, file_rules=file_rules)


def propagate_def_suppressions(
    suppressions: Suppressions, tree: ast.AST
) -> None:
    """Extend ``def``-line suppressions over the decorator lines.

    A finding on a decorated function may anchor to a decorator line
    (e.g. a mutable default inside ``@functools.lru_cache`` plumbing),
    while the human writes the ``# repro: noqa[...]`` on the ``def``
    line — the natural place.  For every decorated ``def``/``class``
    whose definition line carries a suppression, copy it onto each
    decorator line so the anchor choice cannot defeat the suppression.
    Mutates ``suppressions.line_rules`` in place.
    """
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list:
            continue
        rules = suppressions.line_rules.get(node.lineno)
        if not rules:
            continue
        for decorator in node.decorator_list:
            start = decorator.lineno
            end = getattr(decorator, "end_lineno", None) or decorator.lineno
            for lineno in range(start, end + 1):
                suppressions.line_rules[lineno] = (
                    suppressions.line_rules.get(lineno, frozenset()) | rules
                )
