"""Command-line front end shared by ``repro lint`` and
``python -m repro.analysis``.

Semantics:

* **no paths** — full self-audit: lint the installed ``repro`` package
  *and* run the registry conformance auditor.  This is the CI gate and
  must exit 0 at HEAD.
* **explicit paths** — lint only those files/directories (the
  conformance auditor checks the live registries, not arbitrary trees);
  pass ``--conformance`` to run it as well.

``--format json`` emits a machine-readable report (findings as plain
dicts plus a summary block) for CI artifacts.  ``--baseline FILE``
filters out previously accepted findings — matched on
``(rule, relative path, message)`` so line drift does not resurrect
them — and ``--write-baseline FILE`` records the current findings as
that acceptance set.  ``--update-golden`` regenerates the CONF007
golden transcript after an intentional decision-loop change.

Exit codes: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, Severity
from .engine import LintEngine
from .rules import all_rules

__all__ = ["add_lint_arguments", "run_lint", "main"]

_CONF_ROWS = [
    ("CONF001", "error", "every shipped strategy has a batched lane"),
    ("CONF002", "error", "stateful components round-trip export/import_state"),
    ("CONF003", "error", "ComponentSpecs importable, picklable, fingerprint-stable"),
    ("CONF004", "error", "score_kind/accepts_scores pairs are commensurable"),
    ("CONF005", "error", "repro.session/1 envelope covers state-exporting classes"),
    ("CONF006", "error", "registered lanes declare fusion_family/fusion_params"),
    ("CONF007", "error", "decision loop replays the golden transcript byte-for-byte"),
]


def _default_target() -> str:
    """The installed ``repro`` package directory."""
    return str(Path(__file__).resolve().parents[1])


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files/directories to lint (default: the repro package plus "
            "the registry conformance audit)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--no-conformance",
        action="store_true",
        help="skip the registry conformance auditor (layer 2)",
    )
    parser.add_argument(
        "--conformance",
        action="store_true",
        help="run the conformance auditor even when explicit paths are given",
    )
    parser.add_argument(
        "--no-subprocess-checks",
        action="store_true",
        help=(
            "skip the cross-process fingerprint checks (faster; CI runs "
            "them, pre-commit hooks may not want two interpreter spawns)"
        ),
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit fix hints from the report",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json: findings + summary for CI artifacts)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "suppress findings recorded in this baseline file "
            "(matched on rule + relative path + message)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the acceptance baseline and exit",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help=(
            "regenerate the CONF007 golden decision transcript "
            "(tests/analysis/golden/) and exit"
        ),
    )


def _list_rules() -> int:
    rows = [(rule.rule_id, str(rule.severity), rule.title) for rule in all_rules()]
    rows.extend(_CONF_ROWS)
    width = max(len(row[0]) for row in rows)
    for rule_id, severity, title in rows:
        print(f"{rule_id:<{width}}  {severity:<7}  {title}")
    return 0


def _baseline_key(finding: Diagnostic) -> Tuple[str, str, str]:
    """Line-drift-immune identity of a finding for baseline matching."""
    path = finding.path
    try:
        path = os.path.relpath(path)
    except ValueError:
        pass
    return (finding.rule, path.replace(os.sep, "/"), finding.message)


def _load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = document.get("findings", document) if isinstance(document, dict) else document
    keys: Set[Tuple[str, str, str]] = set()
    for entry in entries:
        keys.add((str(entry["rule"]), str(entry["path"]), str(entry["message"])))
    return keys


def _write_baseline(path: str, findings: Sequence[Diagnostic]) -> None:
    entries = sorted(
        {_baseline_key(finding) for finding in findings}
    )
    document = {
        "format": "repro.lint-baseline/1",
        "findings": [
            {"rule": rule, "path": rel_path, "message": message}
            for rule, rel_path, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        return _list_rules()
    if args.update_golden:
        from .golden import record_golden

        print(f"golden transcript written: {record_golden()}")
        return 0

    paths: Sequence[str] = args.paths or [_default_target()]
    run_conformance = not args.no_conformance and (
        not args.paths or args.conformance
    )

    findings: List[Diagnostic] = []
    engine = LintEngine(all_rules())
    try:
        findings.extend(engine.lint_paths(paths))
    except FileNotFoundError as exc:
        print(f"repro lint: error: {exc}")
        return 2

    if run_conformance:
        from .conformance import ConformanceAuditor

        findings.extend(
            ConformanceAuditor(
                subprocess_checks=not args.no_subprocess_checks
            ).audit()
        )

    if args.write_baseline:
        _write_baseline(args.write_baseline, findings)
        print(
            f"baseline written: {args.write_baseline} "
            f"({len(findings)} finding(s))"
        )
        return 0

    suppressed = 0
    if args.baseline:
        try:
            accepted = _load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"repro lint: error: unreadable baseline: {exc}")
            return 2
        kept = [f for f in findings if _baseline_key(f) not in accepted]
        suppressed = len(findings) - len(kept)
        findings = kept

    findings = sorted(findings)
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    scope = "lint + conformance" if run_conformance else "lint"

    if args.format == "json":
        report: Dict[str, Any] = {
            "format": "repro.lint-report/1",
            "findings": [f.to_dict() for f in findings],
            "summary": {
                "scope": scope,
                "errors": errors,
                "warnings": warnings,
                "suppressed_by_baseline": suppressed,
            },
        }
        print(json.dumps(report, indent=2, sort_keys=True))
        return 1 if findings else 0

    for finding in findings:
        print(finding.format(show_hint=not args.no_hints))
    note = f" ({suppressed} baselined)" if suppressed else ""
    if findings:
        print(f"{scope}: {errors} error(s), {warnings} warning(s){note}")
        return 1
    print(f"{scope}: clean{note}")
    return 0


def main(argv: Optional[Sequence[str]] = None, prog: str = "repro lint") -> int:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Determinism linter (REP001-REP008) and registry conformance "
            "auditor (CONF001-CONF007) for the byte-identity contract."
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
