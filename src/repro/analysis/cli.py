"""Command-line front end shared by ``repro lint`` and
``python -m repro.analysis``.

Semantics:

* **no paths** — full self-audit: lint the installed ``repro`` package
  *and* run the registry conformance auditor.  This is the CI gate and
  must exit 0 at HEAD.
* **explicit paths** — lint only those files/directories (the
  conformance auditor checks the live registries, not arbitrary trees);
  pass ``--conformance`` to run it as well.

Exit codes: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from .diagnostics import Diagnostic, Severity
from .engine import LintEngine
from .rules import all_rules

__all__ = ["add_lint_arguments", "run_lint", "main"]


def _default_target() -> str:
    """The installed ``repro`` package directory."""
    return str(Path(__file__).resolve().parents[1])


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files/directories to lint (default: the repro package plus "
            "the registry conformance audit)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--no-conformance",
        action="store_true",
        help="skip the registry conformance auditor (layer 2)",
    )
    parser.add_argument(
        "--conformance",
        action="store_true",
        help="run the conformance auditor even when explicit paths are given",
    )
    parser.add_argument(
        "--no-subprocess-checks",
        action="store_true",
        help=(
            "skip the cross-process fingerprint checks (faster; CI runs "
            "them, pre-commit hooks may not want two interpreter spawns)"
        ),
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit fix hints from the report",
    )


def _list_rules() -> int:
    rows = [(rule.rule_id, str(rule.severity), rule.title) for rule in all_rules()]
    rows.extend(
        [
            ("CONF001", "error", "every shipped strategy has a batched lane"),
            ("CONF002", "error", "stateful components round-trip export/import_state"),
            ("CONF003", "error", "ComponentSpecs importable, picklable, fingerprint-stable"),
            ("CONF004", "error", "score_kind/accepts_scores pairs are commensurable"),
            ("CONF005", "error", "repro.session/1 envelope covers state-exporting classes"),
            ("CONF006", "error", "registered lanes declare fusion_family/fusion_params"),
        ]
    )
    width = max(len(row[0]) for row in rows)
    for rule_id, severity, title in rows:
        print(f"{rule_id:<{width}}  {severity:<7}  {title}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        return _list_rules()

    paths: Sequence[str] = args.paths or [_default_target()]
    run_conformance = not args.no_conformance and (
        not args.paths or args.conformance
    )

    findings: List[Diagnostic] = []
    engine = LintEngine(all_rules())
    try:
        findings.extend(engine.lint_paths(paths))
    except FileNotFoundError as exc:
        print(f"repro lint: error: {exc}")
        return 2

    if run_conformance:
        from .conformance import ConformanceAuditor

        findings.extend(
            ConformanceAuditor(
                subprocess_checks=not args.no_subprocess_checks
            ).audit()
        )

    for finding in sorted(findings):
        print(finding.format(show_hint=not args.no_hints))
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    scope = "lint + conformance" if run_conformance else "lint"
    if findings:
        print(f"{scope}: {errors} error(s), {warnings} warning(s)")
        return 1
    print(f"{scope}: clean")
    return 0


def main(argv: Optional[Sequence[str]] = None, prog: str = "repro lint") -> int:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Determinism linter (REP001-REP005) and registry conformance "
            "auditor (CONF001-CONF006) for the byte-identity contract."
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
