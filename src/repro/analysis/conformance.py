"""Layer 2 — the registry conformance auditor.

The AST linter checks source *text*; this module imports the live
registries and checks the protocol lattice the type system can't
express:

* **CONF001** — every shipped collector/adversary class has a
  registered array-native lane in ``strategies/batched.py`` (a strategy
  without a lane silently falls back to the per-rep loop, losing the
  batched-equals-solo guarantee's cheap half and hiding perf bugs);
* **CONF002** — every stateful component round-trips: drive a canonical
  instance mid-game, ``export_state()``, import into a fresh clone and
  demand byte-identical continued play and re-exported state.  A
  component that consumes randomness or keeps counters without
  exporting them fails here.  Every state-exporting class must have a
  canonical recipe — a new component cannot ship unexercised;
* **CONF003** — every ``ComponentSpec`` reachable from the shipped
  scenario plans and scheme recipes is importable and picklable, and
  every planned ``GameSpec`` fingerprint is byte-stable across two
  fresh subprocesses run under *different* ``PYTHONHASHSEED`` values
  (the store's cache keys must not depend on process state);
* **CONF004** — ``score_kind`` / ``accepts_scores`` pairs are
  commensurable: when an evaluator claims it can reuse a trimmer's
  batch scores, scoring with and without the shared scores must be
  exactly equal (the engine's score-sharing fast path rides on this);
* **CONF005** — the ``repro.session/1`` snapshot envelope covers every
  state-exporting class: anything defining ``export_state`` must be
  carried by one of the session's seven roles (collector, adversary,
  injector, trimmer, quality, judge, source) or be a known nested
  sub-state of one, else snapshots silently drop its state;
* **CONF006** — every *registered* lane class declares its fusion
  contract: a non-empty ``fusion_family`` (the strategy family the
  cross-cell fusion planner groups by) and a ``fusion_params`` tuple
  naming the per-lane attributes it packs into ``(L,)`` parameter
  columns.  Families must be unique per side — one family, one vector
  program — or the planner's cohort keys stop meaning anything.

The auditor is deliberately *live*: it instantiates real components and
plans real scenarios, so it doubles as an import smoke test for the
whole registry surface.
"""

from __future__ import annotations

import importlib
import inspect
import os
import pickle
import pkgutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .diagnostics import Diagnostic, Severity

__all__ = [
    "ConformanceAuditor",
    "CANONICAL_RECIPES",
    "register_recipe",
]


# --------------------------------------------------------------------- #
# canonical recipes
# --------------------------------------------------------------------- #
def _normal_factory(rng: np.random.Generator, n: int) -> np.ndarray:
    """Module-level (hence picklable) GeneratorStream payload factory."""
    return rng.normal(loc=0.5, scale=0.1, size=n)


def _default_recipes() -> Dict[type, List[Callable[[], object]]]:
    from ..core.engine import BandExcessJudge, NoisyPositionJudge
    from ..core.strategies import (
        ElasticAdversary,
        ElasticCollector,
        FixedAdversary,
        GenerousCollector,
        JustBelowAdversary,
        MirrorCollector,
        MixedAdversary,
        NullAdversary,
        OstrichCollector,
        StaticCollector,
        TitForTatCollector,
        TitForTwoTatsCollector,
        UniformRangeAdversary,
    )
    from ..core.strategies.titfortat import MixedStrategyTrigger, QualityTrigger
    from ..streams.source import ArrayStream, GeneratorStream

    return {
        OstrichCollector: [lambda: OstrichCollector()],
        StaticCollector: [lambda: StaticCollector(threshold=0.9)],
        TitForTatCollector: [
            lambda: TitForTatCollector(t_th=0.9),
            # Trigger-equipped variants exercise the nested trigger
            # state (QualityTrigger / MixedStrategyTrigger round-trips
            # ride through the owning collector's export_state).
            lambda: TitForTatCollector(
                t_th=0.9,
                trigger=QualityTrigger(reference_score=0.5, redundancy=0.05),
            ),
            lambda: TitForTatCollector(
                t_th=0.9,
                trigger=MixedStrategyTrigger(
                    equilibrium_probability=0.8, warmup=2
                ),
            ),
        ],
        ElasticCollector: [lambda: ElasticCollector(t_th=0.9, k=0.1)],
        MirrorCollector: [lambda: MirrorCollector(t_th=0.9)],
        GenerousCollector: [lambda: GenerousCollector(t_th=0.9, seed=11)],
        TitForTwoTatsCollector: [lambda: TitForTwoTatsCollector(t_th=0.9)],
        NullAdversary: [lambda: NullAdversary()],
        FixedAdversary: [lambda: FixedAdversary(percentile=0.99)],
        UniformRangeAdversary: [lambda: UniformRangeAdversary(seed=3)],
        MixedAdversary: [lambda: MixedAdversary(p=0.5, seed=5)],
        JustBelowAdversary: [lambda: JustBelowAdversary(initial_threshold=0.9)],
        ElasticAdversary: [lambda: ElasticAdversary(t_th=0.9, k=0.1)],
        BandExcessJudge: [lambda: BandExcessJudge(seed=13)],
        NoisyPositionJudge: [lambda: NoisyPositionJudge(boundary=0.9, seed=17)],
        ArrayStream: [
            lambda: ArrayStream(np.linspace(0.0, 1.0, 100), 10, seed=23)
        ],
        GeneratorStream: [
            lambda: GeneratorStream(_normal_factory, 10, seed=29)
        ],
    }


#: class -> list of zero-arg factories building canonical instances.
#: The auditor drives each one through a mid-game export/import
#: round-trip; tests may :func:`register_recipe` additional entries.
CANONICAL_RECIPES: Dict[type, List[Callable[[], object]]] = {}


def register_recipe(cls: type, factory: Callable[[], object]) -> None:
    """Register a canonical-instance factory for the round-trip audit."""
    CANONICAL_RECIPES.setdefault(cls, []).append(factory)


def _recipes() -> Dict[type, List[Callable[[], object]]]:
    merged = _default_recipes()
    from ..streams.injection import PoisonInjector

    merged[PoisonInjector] = [
        lambda: PoisonInjector(attack_ratio=0.05, seed=19)
    ]
    for cls, factories in CANONICAL_RECIPES.items():
        merged.setdefault(cls, []).extend(factories)
    return merged


#: State-exporting classes that live *inside* another component's
#: export_state (and are exercised through it) rather than holding a
#: session role of their own.
_NESTED_STATE_CLASSES = {"QualityTrigger", "MixedStrategyTrigger"}

#: Abstract protocol bases: define the export_state contract but are
#: never shipped as concrete components.
_PROTOCOL_BASES = {
    "CollectorStrategy",
    "AdversaryStrategy",
    "StreamSource",
    "QualityEvaluator",
    "Trimmer",
}


# --------------------------------------------------------------------- #
# role drivers
# --------------------------------------------------------------------- #
_REFERENCE = np.linspace(0.0, 1.0, 200)
_BATCH = np.concatenate([np.linspace(0.05, 0.95, 45), np.full(5, 0.99)])


def _observation(index: int):
    from ..core.strategies.base import RoundObservation

    return RoundObservation(
        index=index,
        trim_percentile=0.9 + 0.01 * (index % 5),
        injection_percentile=0.99 - 0.005 * (index % 3),
        quality=0.8 - 0.1 * (index % 4),
        observed_poison_ratio=0.01 * (index % 6),
        betrayal=index % 3 == 1,
    )


class _Driver:
    """Role-specific calibrate/advance hooks for the round-trip audit."""

    def calibrate(self, instance) -> None:  # pre-game setup, both twins
        pass

    def advance(self, instance, start: int, steps: int) -> list:
        raise NotImplementedError


def _as_float(value) -> Optional[float]:
    # NullAdversary returns None ("inject nothing") — a legal percentile.
    return None if value is None else float(value)


def _canonical(value) -> str:
    """Byte-stable rendering of play traces and exported states.

    Routed through the store's canonicalizer so ndarrays, numpy scalars
    and nested dicts compare by content, with exact float identity — the
    byte-identity contract, not approximate closeness.
    """
    from ..runtime.store import _canon, canonical_json

    return canonical_json(_canon(value))


def _fingerprint(spec):
    """Canonical fingerprint of a GameSpec/TaskSpec or bare ComponentSpec."""
    from ..runtime.spec import GameSpec, TaskSpec
    from ..runtime.store import _canon, spec_fingerprint

    if isinstance(spec, (GameSpec, TaskSpec)):
        return spec_fingerprint(spec)
    return _canon(spec)


class _StrategyDriver(_Driver):
    def advance(self, instance, start: int, steps: int) -> list:
        outputs = []
        if start == 0:
            instance.reset()
            outputs.append(_as_float(instance.first()))
        for i in range(start, start + steps):
            outputs.append(_as_float(instance.react(_observation(i))))
        return outputs


class _JudgeDriver(_Driver):
    def calibrate(self, instance) -> None:
        instance.fit(_REFERENCE)

    def advance(self, instance, start: int, steps: int) -> list:
        outputs = []
        for i in range(start, start + steps):
            retained = _BATCH * (1.0 - 0.001 * (i % 7))
            outputs.append(
                bool(instance.judge_round(0.99 - 0.01 * (i % 3), retained))
            )
        return outputs


class _InjectorDriver(_Driver):
    def calibrate(self, instance) -> None:
        instance.fit_reference(_REFERENCE)

    def advance(self, instance, start: int, steps: int) -> list:
        outputs = []
        for i in range(start, start + steps):
            benign = _BATCH * (1.0 - 0.001 * (i % 5))
            outputs.append(instance.materialize(benign, 0.99))
        return outputs


class _StreamDriver(_Driver):
    def advance(self, instance, start: int, steps: int) -> list:
        if start == 0:
            instance.reset()
        return [np.asarray(instance.next_batch()) for _ in range(steps)]


def _driver_for(cls: type) -> Optional[_Driver]:
    from ..core.engine import BandExcessJudge, NoisyPositionJudge
    from ..core.strategies.base import AdversaryStrategy, CollectorStrategy
    from ..streams.injection import PoisonInjector
    from ..streams.source import StreamSource

    if issubclass(cls, (CollectorStrategy, AdversaryStrategy)):
        return _StrategyDriver()
    if issubclass(cls, (BandExcessJudge, NoisyPositionJudge)):
        return _JudgeDriver()
    if issubclass(cls, PoisonInjector):
        return _InjectorDriver()
    if issubclass(cls, StreamSource):
        return _StreamDriver()
    return None


# --------------------------------------------------------------------- #
# the auditor
# --------------------------------------------------------------------- #
class ConformanceAuditor:
    """Run the CONF001–CONF007 checks over the live registries.

    ``extra_strategies`` lets tests inject additional strategy classes
    into the audited set (e.g. a deliberately broken one); ``checks``
    restricts the run to a subset of check ids.
    """

    def __init__(
        self,
        extra_strategies: Iterable[type] = (),
        checks: Optional[Iterable[str]] = None,
        subprocess_checks: bool = True,
    ):
        self.extra_strategies = list(extra_strategies)
        self.checks = set(checks) if checks is not None else None
        self.subprocess_checks = subprocess_checks

    # ------------------------------------------------------------------ #
    def audit(self) -> List[Diagnostic]:
        """Every conformance finding, sorted for stable output."""
        findings: List[Diagnostic] = []
        for check_id, check in (
            ("CONF001", self.check_lane_coverage),
            ("CONF002", self.check_state_round_trips),
            ("CONF003", self.check_component_specs),
            ("CONF004", self.check_score_commensurability),
            ("CONF005", self.check_envelope_coverage),
            ("CONF006", self.check_fusion_declarations),
            ("CONF007", self.check_golden_transcript),
        ):
            if self.checks is not None and check_id not in self.checks:
                continue
            findings.extend(check())
        return sorted(findings)

    @staticmethod
    def _finding(
        rule: str, cls: Optional[type], message: str, hint: str
    ) -> Diagnostic:
        path = "<registry>"
        line = 1
        if cls is not None:
            try:
                path = inspect.getsourcefile(cls) or path
                line = inspect.getsourcelines(cls)[1]
            except (OSError, TypeError):
                pass
        return Diagnostic(
            path=path,
            line=line,
            column=1,
            rule=rule,
            severity=Severity.ERROR,
            message=message,
            hint=hint,
        )

    # ------------------------------------------------------------------ #
    def _shipped_strategies(self) -> Tuple[List[type], List[type]]:
        import repro.core.strategies as strategies_pkg

        from ..core.strategies.base import AdversaryStrategy, CollectorStrategy

        collectors: List[type] = []
        adversaries: List[type] = []
        candidates = [
            obj
            for _, obj in inspect.getmembers(strategies_pkg, inspect.isclass)
        ] + self.extra_strategies
        for obj in candidates:
            if obj in (CollectorStrategy, AdversaryStrategy):
                continue
            if inspect.isabstract(obj):
                continue
            if issubclass(obj, CollectorStrategy):
                collectors.append(obj)
            elif issubclass(obj, AdversaryStrategy):
                adversaries.append(obj)
        return collectors, adversaries

    def check_lane_coverage(self) -> Iterator[Diagnostic]:
        """CONF001 — every shipped strategy has a batched lane."""
        from ..core.strategies import batched

        collectors, adversaries = self._shipped_strategies()
        for cls, registry, register in (
            *((c, batched._COLLECTOR_LANES, "register_collector_lanes") for c in collectors),
            *((a, batched._ADVERSARY_LANES, "register_adversary_lanes") for a in adversaries),
        ):
            if cls not in registry:
                yield self._finding(
                    "CONF001",
                    cls,
                    f"strategy `{cls.__name__}` has no array-native lane "
                    "registered in strategies/batched.py",
                    f"implement a lanes class and call {register}() "
                    "(or accept the fallback loop explicitly by "
                    "registering the fallback)",
                )

    # ------------------------------------------------------------------ #
    def check_state_round_trips(self) -> Iterator[Diagnostic]:
        """CONF002 — canonical instances export/import byte-identically."""
        recipes = _recipes()
        collectors, adversaries = self._shipped_strategies()
        for cls in [*collectors, *adversaries]:
            if cls not in recipes:
                yield self._finding(
                    "CONF002",
                    cls,
                    f"strategy `{cls.__name__}` has no canonical recipe — "
                    "its export/import round-trip is unexercised",
                    "add a factory to analysis.conformance.CANONICAL_RECIPES "
                    "via register_recipe()",
                )

        for cls, factories in sorted(
            recipes.items(), key=lambda item: item[0].__name__
        ):
            driver = _driver_for(cls)
            if driver is None:
                yield self._finding(
                    "CONF002",
                    cls,
                    f"no round-trip driver for `{cls.__name__}` "
                    "(unknown role)",
                    "extend analysis.conformance._driver_for for its role",
                )
                continue
            for idx, factory in enumerate(factories):
                try:
                    finding = self._round_trip(cls, idx, factory, driver)
                except Exception as exc:  # audit must report, not crash
                    finding = self._finding(
                        "CONF002",
                        cls,
                        f"round-trip of `{cls.__name__}` (recipe {idx}) "
                        f"raised {type(exc).__name__}: {exc}",
                        "the component must survive export_state/"
                        "import_state mid-game",
                    )
                if finding is not None:
                    yield finding

    def _round_trip(
        self, cls: type, idx: int, factory: Callable[[], object], driver: _Driver
    ) -> Optional[Diagnostic]:
        warmup, continuation = 5, 4
        original = factory()
        if not callable(getattr(original, "export_state", None)) or not callable(
            getattr(original, "import_state", None)
        ):
            return self._finding(
                "CONF002",
                cls,
                f"`{cls.__name__}` does not implement "
                "export_state()/import_state()",
                "implement the state protocol so sessions can snapshot it",
            )
        driver.calibrate(original)
        driver.advance(original, 0, warmup)
        state = original.export_state()

        clone = factory()
        driver.calibrate(clone)
        clone.import_state(state)

        got = driver.advance(clone, warmup, continuation)
        want = driver.advance(original, warmup, continuation)
        if _canonical(got) != _canonical(want):
            return self._finding(
                "CONF002",
                cls,
                f"`{cls.__name__}` (recipe {idx}) diverges after an "
                "export_state/import_state round-trip: continued play is "
                "not byte-identical",
                "export every mutable attribute (RNG bit-generator state, "
                "counters, trigger sub-state) and restore all of them in "
                "import_state()",
            )
        if _canonical(original.export_state()) != _canonical(
            clone.export_state()
        ):
            return self._finding(
                "CONF002",
                cls,
                f"`{cls.__name__}` (recipe {idx}) re-exported state "
                "differs between original and restored clone",
                "export_state() must be a pure function of the component's "
                "mutable state",
            )
        return None

    # ------------------------------------------------------------------ #
    def _harvest_game_specs(self) -> List[Tuple[str, object]]:
        """(origin, GameSpec) pairs from every scenario plan + scheme."""
        from ..experiments.schemes import SCHEMES, scheme_specs
        from ..scenarios import get_scenario, scenario_names

        harvested: List[Tuple[str, object]] = []
        for name in scenario_names():
            scenario = get_scenario(name)
            plan = scenario.plan(scenario.resolve_params("quick", {}))
            for i, spec in enumerate(plan.specs):
                game = getattr(spec, "game", None) or spec
                harvested.append((f"scenario:{name}[{i}]", game))
        for scheme in SCHEMES:
            collector_spec, adversary_spec = scheme_specs(scheme, 0.9)
            harvested.append((f"scheme:{scheme}:collector", collector_spec))
            harvested.append((f"scheme:{scheme}:adversary", adversary_spec))
        return harvested

    def check_component_specs(self) -> Iterator[Diagnostic]:
        """CONF003 — spec importability, picklability, fingerprint stability."""
        from ..runtime.spec import ComponentSpec
        from ..runtime.store import canonical_json

        try:
            harvested = self._harvest_game_specs()
        except Exception as exc:
            yield self._finding(
                "CONF003",
                None,
                f"harvesting scenario plans failed: "
                f"{type(exc).__name__}: {exc}",
                "every shipped scenario must plan cleanly at quick scale",
            )
            return

        component_specs: List[Tuple[str, ComponentSpec]] = []
        for origin, spec in harvested:
            if isinstance(spec, ComponentSpec):
                component_specs.append((origin, spec))
                continue
            for field in ("collector", "adversary", "trimmer", "quality", "judge"):
                sub = getattr(spec, field, None)
                if isinstance(sub, ComponentSpec):
                    component_specs.append((f"{origin}.{field}", sub))

        seen: set = set()
        for origin, cspec in component_specs:
            factory = cspec.factory
            key = (getattr(factory, "__module__", None), getattr(factory, "__qualname__", None))
            if key in seen:
                continue
            seen.add(key)
            module_name, qualname = key
            if module_name is None or qualname is None or "<locals>" in qualname:
                yield self._finding(
                    "CONF003",
                    None,
                    f"{origin}: ComponentSpec factory {factory!r} is not "
                    "importable (no stable module/qualname)",
                    "use a module-level class or function as the factory",
                )
                continue
            try:
                module = importlib.import_module(module_name)
                resolved = module
                for part in qualname.split("."):
                    resolved = getattr(resolved, part)
            except (ImportError, AttributeError) as exc:
                yield self._finding(
                    "CONF003",
                    None,
                    f"{origin}: factory `{module_name}.{qualname}` does not "
                    f"re-import ({exc})",
                    "the factory must be reachable by import for workers "
                    "and cache replay",
                )
                continue
            if resolved is not factory:
                yield self._finding(
                    "CONF003",
                    None,
                    f"{origin}: `{module_name}.{qualname}` re-imports to a "
                    "different object than the registered factory",
                    "register the canonical module-level object",
                )
            try:
                restored = pickle.loads(pickle.dumps(cspec))
                if canonical_json(_fingerprint(restored)) != canonical_json(
                    _fingerprint(cspec)
                ):
                    yield self._finding(
                        "CONF003",
                        None,
                        f"{origin}: ComponentSpec fingerprint changes across "
                        "a pickle round-trip",
                        "spec kwargs must be plain picklable data",
                    )
            except Exception as exc:
                yield self._finding(
                    "CONF003",
                    None,
                    f"{origin}: ComponentSpec does not pickle "
                    f"({type(exc).__name__}: {exc})",
                    "spec kwargs must be plain picklable data",
                )

        if self.subprocess_checks:
            yield from self._check_cross_process_fingerprints(harvested)

    def _check_cross_process_fingerprints(
        self, harvested: List[Tuple[str, object]]
    ) -> Iterator[Diagnostic]:
        """Fingerprints must agree across differently-salted processes."""
        from ..runtime.store import canonical_json

        # Dedup by in-process fingerprint to bound subprocess work.
        unique: List[Tuple[str, object]] = []
        seen: set = set()
        for origin, spec in harvested:
            try:
                key = canonical_json(_fingerprint(spec))
            except Exception as exc:
                yield self._finding(
                    "CONF003",
                    None,
                    f"{origin}: spec_fingerprint failed "
                    f"({type(exc).__name__}: {exc})",
                    "every planned spec must fingerprint cleanly",
                )
                continue
            if key not in seen:
                seen.add(key)
                unique.append((origin, spec))

        child = (
            "import pickle, sys\n"
            "from hashlib import sha256\n"
            "from repro.analysis.conformance import _fingerprint\n"
            "from repro.runtime.store import canonical_json\n"
            "with open(sys.argv[1], 'rb') as fh:\n"
            "    specs = pickle.load(fh)\n"
            "for origin, spec in specs:\n"
            "    digest = sha256(\n"
            "        canonical_json(_fingerprint(spec)).encode()\n"
            "    ).hexdigest()\n"
            "    print(origin, digest)\n"
        )
        with tempfile.TemporaryDirectory() as tmp:
            blob = Path(tmp) / "specs.pkl"
            blob.write_bytes(pickle.dumps(unique))
            outputs = []
            for hashseed in ("0", "1"):
                env = dict(os.environ)
                env["PYTHONHASHSEED"] = hashseed
                src_root = Path(__file__).resolve().parents[2]
                env["PYTHONPATH"] = (
                    f"{src_root}{os.pathsep}{env.get('PYTHONPATH', '')}"
                )
                proc = subprocess.run(
                    [sys.executable, "-c", child, str(blob)],
                    capture_output=True,
                    text=True,
                    env=env,
                )
                if proc.returncode != 0:
                    yield self._finding(
                        "CONF003",
                        None,
                        "fingerprint subprocess failed: "
                        + proc.stderr.strip().splitlines()[-1],
                        "specs must fingerprint in a fresh interpreter",
                    )
                    return
                outputs.append(proc.stdout.strip().splitlines())
        for (origin, _), line_a, line_b in zip(unique, *outputs, strict=False):
            if line_a != line_b:
                yield self._finding(
                    "CONF003",
                    None,
                    f"{origin}: spec fingerprint differs between two fresh "
                    "subprocesses with different PYTHONHASHSEED — a cache "
                    "key depends on process state",
                    "remove hash()/set-order/id() dependence from the "
                    "fingerprint path",
                )

    # ------------------------------------------------------------------ #
    def check_score_commensurability(self) -> Iterator[Diagnostic]:
        """CONF004 — accepts_scores claims imply exact score equality."""
        from ..core.quality import (
            KolmogorovSmirnovEvaluator,
            MeanShiftEvaluator,
            TailMassEvaluator,
        )
        from ..core.trimming import RadialTrimmer, ValueTrimmer

        trimmers = [ValueTrimmer(), RadialTrimmer()]
        evaluators = [
            TailMassEvaluator(),
            MeanShiftEvaluator(),
            KolmogorovSmirnovEvaluator(),
        ]
        for evaluator in evaluators:
            evaluator.fit(_REFERENCE)
            if evaluator.accepts_scores(None):
                yield self._finding(
                    "CONF004",
                    type(evaluator),
                    f"`{type(evaluator).__name__}.accepts_scores(None)` is "
                    "True: it claims compatibility with an unknown score "
                    "kind",
                    "accepts_scores must reject score_kind=None",
                )
            for trimmer in trimmers:
                trimmer.fit_reference(_REFERENCE)
                claims = evaluator.accepts_scores(trimmer.score_kind)
                if not claims:
                    continue
                shared = trimmer.scores(_BATCH)
                with_shared = evaluator.score(_BATCH, scores=shared)
                without = evaluator.score(_BATCH)
                if with_shared != without:
                    yield self._finding(
                        "CONF004",
                        type(evaluator),
                        f"`{type(evaluator).__name__}` accepts "
                        f"score_kind={trimmer.score_kind!r} from "
                        f"`{type(trimmer).__name__}` but scoring with the "
                        f"shared scores differs ({with_shared!r} != "
                        f"{without!r})",
                        "either make score(batch, scores=...) exactly equal "
                        "to score(batch) or stop accepting that score_kind",
                    )

    # ------------------------------------------------------------------ #
    def check_envelope_coverage(self) -> Iterator[Diagnostic]:
        """CONF005 — every state-exporting class fits a session role."""
        import repro

        from ..core.engine import BandExcessJudge, NoisyPositionJudge
        from ..core.quality import QualityEvaluator
        from ..core.strategies.base import AdversaryStrategy, CollectorStrategy
        from ..core.trimming import Trimmer
        from ..streams.injection import PoisonInjector
        from ..streams.source import StreamSource

        role_bases = (
            CollectorStrategy,
            AdversaryStrategy,
            StreamSource,
            QualityEvaluator,
            Trimmer,
            PoisonInjector,
            BandExcessJudge,
            NoisyPositionJudge,
        )

        for module in self._walk_repro_modules(repro):
            for _, cls in inspect.getmembers(module, inspect.isclass):
                if cls.__module__ != module.__name__:
                    continue
                if "export_state" not in cls.__dict__:
                    continue
                if cls.__name__ in _PROTOCOL_BASES:
                    continue
                if cls.__name__ in _NESTED_STATE_CLASSES:
                    continue
                if issubclass(cls, role_bases):
                    continue
                yield self._finding(
                    "CONF005",
                    cls,
                    f"`{cls.__name__}` exports state but fits none of the "
                    "repro.session/1 envelope roles — snapshots would "
                    "silently drop its state",
                    "attach it to a session role (collector/adversary/"
                    "injector/trimmer/quality/judge/source) or register it "
                    "as nested sub-state of one",
                )

    # ------------------------------------------------------------------ #
    def check_fusion_declarations(self) -> Iterator[Diagnostic]:
        """CONF006 — registered lane classes declare the fusion contract."""
        from ..core.strategies import batched

        for side, registry in (
            ("collector", batched._COLLECTOR_LANES),
            ("adversary", batched._ADVERSARY_LANES),
        ):
            families: Dict[str, type] = {}
            seen: set = set()
            for lanes_cls in registry.values():
                if lanes_cls in seen:
                    continue
                seen.add(lanes_cls)
                family = getattr(lanes_cls, "fusion_family", "")
                if not isinstance(family, str) or not family:
                    yield self._finding(
                        "CONF006",
                        lanes_cls,
                        f"{side} lane `{lanes_cls.__name__}` declares no "
                        "fusion_family — the cross-cell fusion planner "
                        "cannot group its tenants",
                        "set fusion_family to the lane's strategy-family "
                        "name and list its (L,) parameter columns in "
                        "fusion_params",
                    )
                    continue
                params = getattr(lanes_cls, "fusion_params", None)
                if not isinstance(params, tuple) or not all(
                    isinstance(p, str) and p for p in params
                ):
                    yield self._finding(
                        "CONF006",
                        lanes_cls,
                        f"{side} lane `{lanes_cls.__name__}` fusion_params "
                        f"is not a tuple of column names (got {params!r})",
                        "name every per-lane attribute the lane packs into "
                        "an (L,) parameter column; use () for a lane with "
                        "no such columns",
                    )
                    continue
                other = families.setdefault(family, lanes_cls)
                if other is not lanes_cls:
                    yield self._finding(
                        "CONF006",
                        lanes_cls,
                        f"{side} lanes `{other.__name__}` and "
                        f"`{lanes_cls.__name__}` both declare "
                        f"fusion_family={family!r} — a family must map to "
                        "exactly one vector program",
                        "give each registered lane class a distinct "
                        "fusion_family",
                    )

    # ------------------------------------------------------------------ #
    def check_golden_transcript(self) -> Iterator[Diagnostic]:
        """CONF007 — the decision loop replays the golden transcript.

        Delegates to :mod:`repro.analysis.golden`: the canonical
        collector × adversary × judge matrix is replayed from frozen
        seeds and must reproduce the checked-in transcript
        byte-for-byte (thresholds, accept counts, judge verdicts and
        per-round state fingerprints).
        """
        from .golden import replay_golden

        yield from replay_golden()

    @staticmethod
    def _walk_repro_modules(package) -> Iterator[object]:
        prefix = package.__name__ + "."
        for info in pkgutil.walk_packages(package.__path__, prefix):
            if info.name.startswith("repro.analysis"):
                continue  # the auditor does not audit itself
            try:
                yield importlib.import_module(info.name)
            except Exception:
                # CONF checks import the registry surface; a module that
                # cannot import at all fails tier-1 long before this.
                continue
