"""Interprocedural dataflow summaries for the determinism rules.

The PR-6 rules were per-statement: REP003 flagged a set iterated *inside*
a canonicalizing function but was blind the moment the iteration moved
into a helper one call away, and REP005 approximated the reset-closure
with a hand-rolled ``self.m()`` walk that missed module-level helpers
(``_shared_reset(self)``) entirely.  This module computes, once per
parsed file, the call-graph facts both rules (and the PR-8/9 surface
rules REP006–REP008) need:

* a **function summary** per module-level function and per method —
  which locals are set-typed, which ``self.X`` attributes the body reads
  and writes, which parameters have attributes assigned on them, and
  which callees (bare local calls and ``self.m()`` calls) it reaches;
* **transitive taint** fixpoints over those summaries — whether a
  function's return value is set-typed, whether its body performs
  order-unstable set iteration (directly or through callees), and which
  of its parameters end up iterated unordered;
* a **class view** with module-local base linearization, exposing
  reachability (``self.m()`` *plus* module helpers that receive
  ``self``) and the attribute read/write closure of any method set.

Summaries are cached on the :class:`~repro.analysis.engine.ModuleContext`
(one parse, one dataflow pass, shared by every rule).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .engine import ModuleContext

__all__ = [
    "FunctionSummary",
    "ClassView",
    "ModuleDataflow",
    "is_set_expr",
    "walk_body",
]


def walk_body(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes."""
    pending: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while pending:
        node = pending.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        pending.extend(ast.iter_child_nodes(node))


def is_set_expr(ctx: ModuleContext, node: ast.expr) -> bool:
    """Whether the expression is syntactically set-typed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node.func)
        if resolved in {"set", "frozenset"}:
            return True
        name = node.func.attr if isinstance(node.func, ast.Attribute) else None
        return name in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }
    return False


def _root_name(expr: ast.expr) -> Optional[str]:
    """The root ``Name`` of a dotted/subscripted access chain."""
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _assign_targets(node: ast.stmt) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


@dataclass(frozen=True)
class FunctionSummary:
    """Per-function syntactic facts (no transitive closure applied)."""

    qualname: str
    node: ast.FunctionDef
    #: Positional parameter names, in order (``self`` included).
    params: Tuple[str, ...]
    #: Methods the body calls as ``self.m(...)``.
    self_calls: FrozenSet[str]
    #: Bare local names the body calls as ``f(...)``.
    local_calls: FrozenSet[str]
    #: ``self.X`` attribute names the body assigns.
    self_writes: FrozenSet[str]
    #: ``self.X`` attribute names the body loads.
    self_reads: FrozenSet[str]
    #: param name -> attribute names assigned on that parameter.
    param_writes: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: param name -> attribute names read on that parameter.
    param_reads: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: Local names bound to syntactically set-typed expressions.
    set_locals: FrozenSet[str] = frozenset()
    #: The body returns a set-typed expression (syntactic only).
    returns_set_literal: bool = False
    #: The body iterates a set-typed value without sorting (syntactic).
    unordered_iteration: bool = False
    #: Parameters the body iterates unordered (directly).
    unordered_params: FrozenSet[str] = frozenset()
    #: Call sites: (callee kind, callee name, positional arg roots).
    calls: Tuple[Tuple[str, str, Tuple[Optional[str], ...]], ...] = ()


#: Order-preserving consumers for which set iteration order leaks out.
_ORDERED_CONSUMERS = {"list", "tuple", "enumerate"}


def _summarize(
    ctx: ModuleContext, qualname: str, fn: ast.FunctionDef
) -> FunctionSummary:
    params = tuple(arg.arg for arg in fn.args.posonlyargs + fn.args.args)
    param_set = set(params)
    self_calls: Set[str] = set()
    local_calls: Set[str] = set()
    self_writes: Set[str] = set()
    self_reads: Set[str] = set()
    param_writes: Dict[str, Set[str]] = {}
    param_reads: Dict[str, Set[str]] = {}
    set_locals: Set[str] = set()
    calls: List[Tuple[str, str, Tuple[Optional[str], ...]]] = []
    returns_set_literal = False
    unordered_iteration = False
    unordered_params: Set[str] = set()

    def is_setish(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name) and expr.id in set_locals:
            return True
        return is_set_expr(ctx, expr)

    # First pass: locals bound to set expressions (order-independent
    # over-approximation: a name once bound to a set stays tainted).
    for node in walk_body(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and is_set_expr(ctx, node.value)
        ):
            set_locals.add(node.targets[0].id)

    for node in walk_body(fn):
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                self_calls.add(node.func.attr)
                arg_roots = tuple(_root_name(a) for a in node.args)
                calls.append(("self", node.func.attr, arg_roots))
            elif isinstance(node.func, ast.Name):
                local_calls.add(node.func.id)
                arg_roots = tuple(_root_name(a) for a in node.args)
                calls.append(("local", node.func.id, arg_roots))
            name = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id if isinstance(node.func, ast.Name) else None
            )
            is_join = name == "join" and isinstance(node.func, ast.Attribute)
            if (name in _ORDERED_CONSUMERS or is_join) and node.args:
                if is_setish(node.args[0]):
                    unordered_iteration = True
                if (
                    isinstance(node.args[0], ast.Name)
                    and node.args[0].id in param_set
                    and node.args[0].id != "self"
                ):
                    unordered_params.add(node.args[0].id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if is_setish(node.iter):
                unordered_iteration = True
            if (
                isinstance(node.iter, ast.Name)
                and node.iter.id in param_set
                and node.iter.id != "self"
            ):
                unordered_params.add(node.iter.id)
        elif isinstance(node, ast.comprehension):
            if is_setish(node.iter):
                unordered_iteration = True
            if (
                isinstance(node.iter, ast.Name)
                and node.iter.id in param_set
                and node.iter.id != "self"
            ):
                unordered_params.add(node.iter.id)
        elif isinstance(node, ast.Return) and node.value is not None:
            if is_setish(node.value):
                returns_set_literal = True
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                root = node.value.id
                if isinstance(node.ctx, ast.Load):
                    if root == "self":
                        self_reads.add(node.attr)
                    elif root in param_set:
                        param_reads.setdefault(root, set()).add(node.attr)

        for target in _assign_targets(node) if isinstance(node, ast.stmt) else ():
            for leaf in _flatten_targets(target):
                if isinstance(leaf, ast.Attribute) and isinstance(
                    leaf.value, ast.Name
                ):
                    root = leaf.value.id
                    if root == "self":
                        self_writes.add(leaf.attr)
                    elif root in param_set:
                        param_writes.setdefault(root, set()).add(leaf.attr)

    return FunctionSummary(
        qualname=qualname,
        node=fn,
        params=params,
        self_calls=frozenset(self_calls),
        local_calls=frozenset(local_calls),
        self_writes=frozenset(self_writes),
        self_reads=frozenset(self_reads),
        param_writes={k: frozenset(v) for k, v in param_writes.items()},
        param_reads={k: frozenset(v) for k, v in param_reads.items()},
        set_locals=frozenset(set_locals),
        returns_set_literal=returns_set_literal,
        unordered_iteration=unordered_iteration,
        unordered_params=frozenset(unordered_params),
        calls=tuple(calls),
    )


class ClassView:
    """Method lookup over a class and its module-local base chain."""

    def __init__(self, df: "ModuleDataflow", cls: ast.ClassDef):
        self._df = df
        self.cls = cls
        #: method name -> defining summary (own definitions win).
        self.methods: Dict[str, FunctionSummary] = {}
        seen: Set[str] = set()
        queue: List[ast.ClassDef] = [cls]
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            for node in current.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.methods.setdefault(
                        node.name,
                        df.summary(f"{current.name}.{node.name}"),
                    )
            for base in current.bases:
                base_name = _root_or_attr_name(base)
                local = df.class_defs.get(base_name) if base_name else None
                if local is not None:
                    queue.append(local)

    # ------------------------------------------------------------------ #
    def reachable(self, roots: Set[str]) -> Set[str]:
        """Methods reachable from ``roots`` through ``self.m()`` calls."""
        visited: Set[str] = set()
        queue = [name for name in roots if name in self.methods]
        while queue:
            name = queue.pop()
            if name in visited:
                continue
            visited.add(name)
            queue.extend(
                callee
                for callee in self.methods[name].self_calls
                if callee in self.methods and callee not in visited
            )
        return visited

    def _helper_effects(
        self, names: Set[str], kind: str
    ) -> Set[str]:
        """Attr reads/writes on ``self`` via module helpers ``f(self)``."""
        effects: Set[str] = set()
        for name in names:
            summary = self.methods[name]
            for call_kind, callee, arg_roots in summary.calls:
                if call_kind != "local":
                    continue
                helper = self._df.functions.get(callee)
                if helper is None:
                    continue
                for position, root in enumerate(arg_roots):
                    if root != "self" or position >= len(helper.params):
                        continue
                    param = helper.params[position]
                    table = (
                        helper.param_writes
                        if kind == "writes"
                        else helper.param_reads
                    )
                    effects.update(table.get(param, frozenset()))
        return effects

    def attrs_assigned(self, roots: Set[str]) -> Set[str]:
        """``self.X`` names assigned by ``roots``'s reachability closure.

        Includes attributes assigned by module-level helpers that
        receive ``self`` as an argument (``_shared_reset(self)``).
        """
        names = self.reachable(roots)
        attrs: Set[str] = set()
        for name in names:
            attrs.update(self.methods[name].self_writes)
        attrs.update(self._helper_effects(names, "writes"))
        return attrs

    def method_writes(self, name: str) -> Set[str]:
        """``self.X`` names one method assigns, helpers-via-self included."""
        if name not in self.methods:
            return set()
        attrs = set(self.methods[name].self_writes)
        attrs.update(self._helper_effects({name}, "writes"))
        return attrs

    def attrs_read(self, roots: Set[str]) -> Set[str]:
        """``self.X`` names read by ``roots``'s reachability closure."""
        names = self.reachable(roots)
        attrs: Set[str] = set()
        for name in names:
            attrs.update(self.methods[name].self_reads)
        attrs.update(self._helper_effects(names, "reads"))
        return attrs

    def resolve_self_call(self, method: str) -> Optional[FunctionSummary]:
        """The summary a ``self.method()`` call dispatches to (if local)."""
        return self.methods.get(method)


def _root_or_attr_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class ModuleDataflow:
    """Call-graph + summary facts for one parsed module, with fixpoints."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        #: module-level function name -> summary.
        self.functions: Dict[str, FunctionSummary] = {}
        #: class name -> ClassDef (module-local).
        self.class_defs: Dict[str, ast.ClassDef] = {}
        #: qualified name ("f" or "Cls.m") -> summary.
        self._summaries: Dict[str, FunctionSummary] = {}
        self._views: Dict[str, ClassView] = {}

        tree = ctx.tree
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary = _summarize(ctx, node.name, node)
                self.functions[node.name] = summary
                self._summaries[node.name] = summary
            elif isinstance(node, ast.ClassDef):
                self.class_defs[node.name] = node
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{node.name}.{sub.name}"
                        self._summaries[qual] = _summarize(ctx, qual, sub)

        self._returns_set: Set[str] = set()
        self._unordered: Set[str] = set()
        self._fixpoint()

    # ------------------------------------------------------------------ #
    @classmethod
    def of(cls, ctx: ModuleContext) -> "ModuleDataflow":
        """The module's cached dataflow (built on first request)."""
        cached = getattr(ctx, "_dataflow", None)
        if cached is None:
            cached = cls(ctx)
            ctx._dataflow = cached  # type: ignore[attr-defined]
        return cached

    def summary(self, qualname: str) -> FunctionSummary:
        return self._summaries[qualname]

    def class_view(self, class_name: str) -> ClassView:
        view = self._views.get(class_name)
        if view is None:
            view = ClassView(self, self.class_defs[class_name])
            self._views[class_name] = view
        return view

    # ------------------------------------------------------------------ #
    def _resolve(
        self, caller: FunctionSummary, kind: str, callee: str
    ) -> Optional[FunctionSummary]:
        """Resolve one call edge to a module-local summary (or None)."""
        if kind == "local":
            return self.functions.get(callee)
        # self.m(): dispatch through the caller's class view.
        class_name = caller.qualname.split(".", 1)[0]
        if class_name in self.class_defs:
            return self.class_view(class_name).resolve_self_call(callee)
        return None

    def _fixpoint(self) -> None:
        """Close returns-set and unordered-iteration facts over calls."""
        for qual, summary in self._summaries.items():
            if summary.returns_set_literal:
                self._returns_set.add(qual)
            if summary.unordered_iteration:
                self._unordered.add(qual)

        changed = True
        while changed:
            changed = False
            for qual, summary in self._summaries.items():
                if qual not in self._returns_set:
                    for node in walk_body(summary.node):
                        if isinstance(node, ast.Return) and isinstance(
                            node.value, ast.Call
                        ):
                            resolved = self._resolve_call_node(
                                summary, node.value
                            )
                            if (
                                resolved is not None
                                and resolved.qualname in self._returns_set
                            ):
                                self._returns_set.add(qual)
                                changed = True
                                break
                if qual not in self._unordered:
                    for kind, name, _ in summary.calls:
                        resolved = self._resolve(summary, kind, name)
                        if (
                            resolved is not None
                            and resolved.qualname in self._unordered
                        ):
                            self._unordered.add(qual)
                            changed = True
                            break

    def _resolve_call_node(
        self, caller: FunctionSummary, call: ast.Call
    ) -> Optional[FunctionSummary]:
        if isinstance(call.func, ast.Name):
            return self._resolve(caller, "local", call.func.id)
        if (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        ):
            return self._resolve(caller, "self", call.func.attr)
        return None

    # ------------------------------------------------------------------ #
    # queries used by the rules
    # ------------------------------------------------------------------ #
    def returns_set(self, caller_qual: str, call: ast.Call) -> bool:
        """Whether ``call``'s return value is set-typed (transitively)."""
        caller = self._summaries.get(caller_qual)
        if caller is None:
            return False
        resolved = self._resolve_call_node(caller, call)
        return resolved is not None and resolved.qualname in self._returns_set

    def performs_unordered_iteration(
        self, caller_qual: str, call: ast.Call
    ) -> Optional[str]:
        """Callee name when ``call`` reaches unordered set iteration."""
        caller = self._summaries.get(caller_qual)
        if caller is None:
            return None
        resolved = self._resolve_call_node(caller, call)
        if resolved is not None and resolved.qualname in self._unordered:
            return resolved.qualname
        return None

    def unordered_param_positions(
        self, caller_qual: str, call: ast.Call
    ) -> List[int]:
        """Positional indices of ``call`` args the callee iterates unordered.

        Positions are *call-site* argument indices (``self`` receivers
        already accounted for on method dispatch).
        """
        caller = self._summaries.get(caller_qual)
        if caller is None:
            return []
        resolved = self._resolve_call_node(caller, call)
        if resolved is None:
            return []
        offset = 0
        if (
            isinstance(call.func, ast.Attribute)
            and resolved.params
            and resolved.params[0] == "self"
        ):
            offset = 1
        positions: List[int] = []
        for i in range(len(call.args)):
            param_index = i + offset
            if param_index < len(resolved.params) and (
                resolved.params[param_index] in resolved.unordered_params
            ):
                positions.append(i)
        return positions

    def enclosing_qualname(self, node: ast.AST) -> Optional[str]:
        """The ``f``/``Cls.m`` qualname of the function containing ``node``."""
        fn: Optional[ast.AST] = None
        for anc in self.ctx.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = anc
                break
        if fn is None:
            return None
        parent = self.ctx.parent(fn)
        if isinstance(parent, ast.ClassDef):
            return f"{parent.name}.{fn.name}"  # type: ignore[union-attr]
        return fn.name  # type: ignore[union-attr]
