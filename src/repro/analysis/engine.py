"""The determinism linter's rule engine.

One parse per file, one shared :class:`ModuleContext` (source lines,
parent links, resolved import aliases, suppression table), and a flat
list of :class:`Rule` objects that each walk the tree and yield
:class:`~repro.analysis.diagnostics.Diagnostic` findings.  Rules are
deliberately *whole-module* visitors rather than per-node callbacks: the
repo's violation classes (an ``__init__`` body diffed against ``reset``,
a call argument flowing into a seed) need more context than a single
node, and at this codebase's size a handful of extra walks is free.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic, Severity
from .suppressions import (
    Suppressions,
    parse_suppressions,
    propagate_def_suppressions,
)

__all__ = [
    "ModuleContext",
    "Rule",
    "LintEngine",
    "iter_python_files",
]


# --------------------------------------------------------------------- #
# module context
# --------------------------------------------------------------------- #
@dataclass
class ModuleContext:
    """Everything rules need to know about one parsed source file."""

    path: str
    source: str
    tree: ast.AST
    lines: List[str]
    suppressions: Suppressions
    #: local name -> imported module dotted path (``np`` -> ``numpy``).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> fully qualified imported symbol
    #: (``default_rng`` -> ``numpy.random.default_rng``).
    symbol_aliases: Dict[str, str] = field(default_factory=dict)
    _parents: Dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        ctx = cls(
            path=path,
            source=source,
            tree=tree,
            lines=lines,
            suppressions=parse_suppressions(lines),
        )
        propagate_def_suppressions(ctx.suppressions, tree)
        ctx._index_imports()
        ctx._index_parents()
        return ctx

    # ------------------------------------------------------------------ #
    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.symbol_aliases[local] = f"{node.module}.{alias.name}"

    def _index_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # ------------------------------------------------------------------ #
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The node's syntactic parent (``None`` at module level)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from the node's parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Best-effort dotted name of a call target.

        ``np.random.default_rng`` resolves through the import table to
        ``numpy.random.default_rng``; a bare imported ``default_rng``
        resolves the same way; unknown names return ``None``.  Builtins
        resolve to their bare name only while unshadowed by an import.
        """
        parts: List[str] = []
        current = func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = current.id
        parts.reverse()
        if root in self.symbol_aliases:
            return ".".join([self.symbol_aliases[root], *parts])
        if root in self.module_aliases:
            return ".".join([self.module_aliases[root], *parts])
        return ".".join([root, *parts])

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        return self.suppressions.is_suppressed(
            diagnostic.rule, diagnostic.line
        )


# --------------------------------------------------------------------- #
# rules
# --------------------------------------------------------------------- #
class Rule:
    """One determinism rule: a stable id, a severity and a tree check."""

    #: Stable identifier (``REP001`` …) used in reports and ``noqa``.
    rule_id: str = ""
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``repro lint --list-rules``.
    title: str = ""
    #: Default remediation hint attached to findings.
    fix_hint: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        """Yield every finding of this rule in the module."""
        raise NotImplementedError

    def diagnostic(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Diagnostic:
        """A finding anchored to ``node``'s location."""
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
            hint=hint or self.fix_hint,
        )


# --------------------------------------------------------------------- #
# engine
# --------------------------------------------------------------------- #
def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into the sorted set of ``.py`` files."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        else:
            candidates = []
        for candidate in candidates:
            key = str(candidate.resolve())
            if key not in seen:
                seen.add(key)
                yield candidate


class LintEngine:
    """Run a rule set over source files and collect findings."""

    def __init__(self, rules: Sequence[Rule]):
        ids = [rule.rule_id for rule in rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule ids: {ids}")
        self.rules = list(rules)

    def lint_source(self, source: str, path: str = "<string>") -> List[Diagnostic]:
        """Lint one in-memory module (testing and tooling entry point)."""
        try:
            ctx = ModuleContext.parse(path, source)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    path=path,
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) + 1,
                    rule="REP000",
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                    hint="fix the syntax error so the file can be audited",
                )
            ]
        findings: List[Diagnostic] = []
        for rule in self.rules:
            for diagnostic in rule.check(ctx):
                if not ctx.is_suppressed(diagnostic):
                    findings.append(diagnostic)
        return sorted(findings)

    def lint_file(self, path: Path) -> List[Diagnostic]:
        return self.lint_source(path.read_text(encoding="utf-8"), str(path))

    def lint_paths(self, paths: Sequence[str]) -> List[Diagnostic]:
        """Lint every ``.py`` file under ``paths``, in stable order."""
        findings: List[Diagnostic] = []
        for path in iter_python_files(paths):
            findings.extend(self.lint_file(path))
        return findings


def _names_in_target(target: ast.expr) -> Iterator[str]:
    """Every plain name bound by an assignment target."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _names_in_target(element)


def assigned_names(node: ast.stmt) -> Tuple[str, ...]:
    """Plain names bound by an assignment statement (empty otherwise)."""
    if isinstance(node, ast.Assign):
        names: List[str] = []
        for target in node.targets:
            names.extend(_names_in_target(target))
        return tuple(names)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return tuple(_names_in_target(node.target))
    return ()
