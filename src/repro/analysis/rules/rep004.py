"""REP004 — no mutable defaults or shared mutable class state.

A mutable default argument is one object shared by every call; a
mutable literal assigned in a component class body is one object shared
by every instance.  Either way, two games that should be independent
suddenly share state and byte-identity across repetitions dies.  The
default-argument half applies to every function in the tree; the
class-attribute half is scoped to strategy/judge/injector/stream
component classes (see :func:`~repro.analysis.rules.common
.component_classes`), where instances must be isolated by contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Rule
from .common import component_classes, is_mutable_literal

__all__ = ["MutableSharedStateRule"]


class MutableSharedStateRule(Rule):
    rule_id = "REP004"
    title = "no mutable default args / mutable class-level state in components"
    fix_hint = (
        "default to None and build the container in the body, or move the "
        "class attribute into __init__"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        yield from self._check_defaults(ctx)
        yield from self._check_class_state(ctx)

    # ------------------------------------------------------------------ #
    def _check_defaults(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults: List[ast.expr] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if is_mutable_literal(ctx, default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.diagnostic(
                        ctx,
                        default,
                        f"mutable default argument in `{name}()` is shared "
                        "across calls",
                    )

    def _check_class_state(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for cls in component_classes(ctx):
            for stmt in cls.body:
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                if value is not None and is_mutable_literal(ctx, value):
                    yield self.diagnostic(
                        ctx,
                        value,
                        f"mutable class-level attribute on component "
                        f"`{cls.name}` is shared by every instance",
                    )
