"""REP008 — snapshot completeness for mid-game state.

Static companion to the live CONF002 snapshot/restore audit.  A
component whose ``export_state()`` forgets a mid-game attribute still
round-trips its *other* state cleanly, so the bug hides until a restore
lands mid-run and the forgotten counter silently keeps its future
value.  The rule diffs three attribute sets per component class that
defines both ``__init__`` and an ``export_state`` surface:

* ``init``  — ``self.X`` assignments in ``__init__``;
* ``play``  — attributes mutated by play-path methods (everything
  except lifecycle: init/reset/export/import and the calibration
  methods ``fit``/``fit_reference``, plus their transitive helpers);
* ``covered`` — attributes ``export_state()`` reads, unioned with
  attributes ``import_state()`` assigns (either side of the round-trip
  covering the attribute is enough for the static check — the live
  CONF002 audit verifies the actual byte round-trip).

``init ∩ play − covered`` is mid-game state a snapshot would lose, and
each such attribute is flagged at its ``__init__`` assignment.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from ..dataflow import ModuleDataflow
from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Rule
from .common import class_methods, component_classes, self_attribute_assigns

__all__ = ["SnapshotCompletenessRule"]

#: Lifecycle / calibration roots that never count as "play".
_NON_PLAY = {
    "__init__",
    "reset",
    "export_state",
    "import_state",
    "fit",
    "fit_reference",
}


class SnapshotCompletenessRule(Rule):
    rule_id = "REP008"
    title = "export_state/import_state must cover all mid-game state"
    fix_hint = (
        "include the attribute in export_state() and restore it in "
        "import_state() so snapshot/restore round-trips mid-game state"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        df = ModuleDataflow.of(ctx)
        for cls in component_classes(ctx):
            own = class_methods(cls)
            init_fn = own.get("__init__")
            if init_fn is None:
                continue  # analyzed at the class that defines __init__
            view = df.class_view(cls.name)
            if "export_state" not in view.methods:
                continue  # no snapshot surface to audit

            covered = view.attrs_read({"export_state"}) | view.attrs_assigned(
                {"import_state"}
            )
            lifecycle = view.reachable(_NON_PLAY)

            play_mutations: Dict[str, str] = {}
            for name in view.methods:
                if name in lifecycle:
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue
                for attr in sorted(view.method_writes(name)):
                    play_mutations.setdefault(attr, name)

            init_assigns = self_attribute_assigns(init_fn)
            for attr, stmts in sorted(init_assigns.items()):
                if attr in covered or attr not in play_mutations:
                    continue
                yield self.diagnostic(
                    ctx,
                    stmts[0],
                    f"`{cls.name}.{attr}` is mutated in "
                    f"`{play_mutations[attr]}()` but export_state()/"
                    "import_state() never covers it — a snapshot restored "
                    "mid-game would silently keep the live value",
                )
