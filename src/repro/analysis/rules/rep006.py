"""REP006 — fusion purity: ``fusion_params`` names constants only.

The PR-8 cross-cell fusion planner groups lane tenants by
``fusion_family`` and stacks the columns named in ``fusion_params`` into
one compiled round program.  That program is sound only if the declared
parameter columns are *constants*: packed once at lane build from
init-assigned instance attributes and never written again.  A mutable
column smuggled into ``fusion_params`` (a running EMA, a betrayal
latch) makes the declaration lie — the planner and the CONF006 audit
would treat lane state as re-packable configuration, and a lane rebuilt
from its declaration would silently rewind mid-game state.  Mutable
per-lane state belongs in the separate ``fusion_state`` tuple.

The rule checks, per class declaring a non-empty ``fusion_family``:

* **(A)** the ``fusion_params`` / ``fusion_state`` declarations are
  tuple literals of unique, non-empty string constants;
* **(B)** every traceable ``fusion_params`` entry (one whose backing
  ``self`` column the lane packs in ``__init__``/``build`` from an
  instance attribute of the same name) is never assigned outside the
  build path — not in ``react_many``, not in ``reset_many``;
* **(C)** no method nests a closure (``def``/``lambda``) that mutates
  lane state (``self.X = ...`` or ``nonlocal`` writes) — a compiled
  round program must be a pure function of its parameter columns.

Untraceable names (columns packed through method calls like
``inst.first()``) are left to the live CONF006 audit.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..dataflow import ModuleDataflow, walk_body
from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Rule

__all__ = ["FusionPurityRule"]

#: Methods that may (re)pack parameter columns: the lane build path.
_BUILD_METHODS = {"__init__", "build"}


def _class_tuple_decl(
    cls: ast.ClassDef, name: str
) -> Optional[Tuple[ast.stmt, Optional[List[ast.expr]]]]:
    """The class-level ``name = (...)`` declaration, if any.

    Returns ``(stmt, elements)`` with ``elements=None`` when the value
    is not a tuple literal.
    """
    for node in cls.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                value = node.value  # type: ignore[union-attr]
                if isinstance(value, ast.Tuple):
                    return node, value.elts
                return node, None
    return None


def _string_const(cls_family: ast.expr) -> Optional[str]:
    if isinstance(cls_family, ast.Constant) and isinstance(
        cls_family.value, str
    ):
        return cls_family.value
    return None


def _matches(read_name: str, param: str) -> bool:
    """Whether an instance-attribute read backs a declared param name."""
    return read_name == param or read_name.lstrip("_") == param


class FusionPurityRule(Rule):
    rule_id = "REP006"
    title = "fusion_params must name init-assigned, never-mutated constants"
    fix_hint = (
        "move mutable per-lane state out of fusion_params (declare it in "
        "fusion_state) and keep compiled round programs closure-free"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        df = ModuleDataflow.of(ctx)
        for cls in df.class_defs.values():
            family_decl = _class_tuple_decl(cls, "fusion_family")
            if family_decl is None:
                continue
            family_stmt, _ = family_decl
            family = _string_const(
                getattr(family_stmt, "value", None)  # type: ignore[arg-type]
            )
            if not family:
                continue  # fallback/base declarations ("" family)
            yield from self._check_class(ctx, df, cls)

    # ------------------------------------------------------------------ #
    def _check_class(
        self, ctx: ModuleContext, df: ModuleDataflow, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        params: List[str] = []
        for decl_name in ("fusion_params", "fusion_state"):
            decl = _class_tuple_decl(cls, decl_name)
            if decl is None:
                continue
            stmt, elements = decl
            if elements is None:
                yield self.diagnostic(
                    ctx,
                    stmt,
                    f"`{cls.name}.{decl_name}` is not a tuple literal of "
                    "column names",
                    hint="declare the columns as a literal tuple of strings",
                )
                continue
            names = [_string_const(el) for el in elements]
            if any(not name for name in names):
                yield self.diagnostic(
                    ctx,
                    stmt,
                    f"`{cls.name}.{decl_name}` entries must be non-empty "
                    "string constants",
                    hint="declare the columns as a literal tuple of strings",
                )
                continue
            if len(set(names)) != len(names):
                yield self.diagnostic(
                    ctx,
                    stmt,
                    f"`{cls.name}.{decl_name}` repeats a column name",
                    hint="each per-lane column is declared exactly once",
                )
            if decl_name == "fusion_params":
                params = [name for name in names if name]

        if not params:
            yield from self._check_closures(ctx, df, cls)
            return

        view = df.class_view(cls.name)
        build_reachable = view.reachable(set(_BUILD_METHODS))
        backing = self._backing_columns(view, build_reachable, params)

        params_decl = _class_tuple_decl(cls, "fusion_params")
        anchor = params_decl[0] if params_decl is not None else cls

        for param in params:
            for attr in sorted(backing.get(param, set())):
                for method_name in sorted(view.methods):
                    if method_name in build_reachable:
                        continue
                    if attr in view.method_writes(method_name):
                        yield self.diagnostic(
                            ctx,
                            anchor,
                            f"fusion param {param!r} of `{cls.name}` is "
                            f"backed by `self.{attr}`, which "
                            f"`{method_name}()` mutates — fusion params "
                            "must be init-assigned constants",
                        )
                        break

        yield from self._check_closures(ctx, df, cls)

    # ------------------------------------------------------------------ #
    def _backing_columns(
        self, view, build_reachable: Set[str], params: List[str]
    ) -> Dict[str, Set[str]]:
        """param name -> ``self`` columns whose build RHS packs it."""
        backing: Dict[str, Set[str]] = {}
        for method_name in build_reachable:
            summary = view.methods[method_name]
            for node in walk_body(summary.node):
                if not isinstance(node, ast.Assign):
                    continue
                self_attrs = [
                    t.attr
                    for t in node.targets
                    if isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ]
                if not self_attrs:
                    continue
                reads = self._instance_reads(node.value)
                for param in params:
                    if any(_matches(read, param) for read in reads):
                        backing.setdefault(param, set()).update(self_attrs)
        return backing

    @staticmethod
    def _instance_reads(value: ast.expr) -> Set[str]:
        """Attribute/string names the RHS reads off non-self objects."""
        reads: Set[str] = set()
        for node in ast.walk(value):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                root = node.value
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if isinstance(root, ast.Name) and root.id != "self":
                    reads.add(node.attr)
            elif isinstance(node, ast.Call):
                # _column(instances, "name") / getattr(inst, "name")
                name = (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else (
                        node.func.attr
                        if isinstance(node.func, ast.Attribute)
                        else None
                    )
                )
                if name in {"_column", "getattr"} and len(node.args) >= 2:
                    literal = node.args[1]
                    if isinstance(literal, ast.Constant) and isinstance(
                        literal.value, str
                    ):
                        reads.add(literal.value)
        return reads

    # ------------------------------------------------------------------ #
    def _check_closures(
        self, ctx: ModuleContext, df: ModuleDataflow, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(method):
                if node is method or not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if self._closure_mutates(node):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"`{cls.name}.{method.name}` nests a closure that "
                        "mutates lane state — compiled round programs must "
                        "be pure functions of their parameter columns",
                    )

    @staticmethod
    def _closure_mutates(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Nonlocal):
                return True
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        if (
                            isinstance(sub, ast.Attribute)
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id == "self"
                        ):
                            return True
        return False
