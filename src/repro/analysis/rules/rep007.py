"""REP007 — deferred-writeback safety for lane-synced state.

PR 9 made lane kernels the *temporary* authority over per-instance
state: strategy counters and injector RNG positions diverge inside the
lanes and are written back onto the owning instances only through the
sanctioned surfaces (``finalize``/``sync_lanes``/``flush_all``,
``import_state``, and the build/reset/calibration paths).  A stray
write from a play-path method — ``react_many`` reaching into
``inst._current`` mid-round — would race the deferred writeback and
break batched-equals-solo byte identity.  Two checks:

* **(A)** inside a lane-synced class (one declaring a non-empty
  ``fusion_family``, or defining ``finalize``/``sync_lanes``/
  ``flush_all``), private attributes of non-``self`` objects may be
  assigned only from the sanctioned surfaces or their helpers;
* **(B)** raw ``Generator`` bit-state (``.bit_generator.state``) may be
  touched only inside the protocol helpers ``rng_state`` /
  ``set_rng_state`` — every other read or write bypasses the deep-copy
  contract those helpers pin (module-wide, not just lane classes).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..dataflow import ModuleDataflow, walk_body
from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Rule

__all__ = ["DeferredWritebackSafetyRule"]

#: Surfaces allowed to write other objects' private state: the
#: writeback protocol plus build/reset/calibration (pre-play) paths.
_SANCTIONED = {
    "__init__",
    "build",
    "fit",
    "fit_reference",
    "reset",
    "reset_many",
    "finalize",
    "sync_lanes",
    "flush_all",
    "import_state",
}

#: Methods whose presence marks a class as owning lane-synced state.
_WRITEBACK_METHODS = {"finalize", "sync_lanes", "flush_all"}

#: The only functions allowed to touch raw Generator bit-state.
_RNG_STATE_FUNCS = {"rng_state", "set_rng_state"}

#: NumPy bit-generator constructors (their ``.state`` is raw bit-state).
_BITGEN_CONSTRUCTORS = {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}


def _declares_family(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "fusion_family":
                value = node.value  # type: ignore[union-attr]
                return isinstance(value, ast.Constant) and bool(value.value)
    return False


def _root_name(expr: ast.expr) -> Optional[str]:
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _private_foreign_writes(target: ast.expr) -> Iterator[ast.Attribute]:
    """Attribute leaves writing ``X._attr`` where X is not ``self``."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _private_foreign_writes(element)
        return
    leaf = target
    if isinstance(leaf, ast.Subscript):
        leaf = leaf.value  # inst._arr[...] = v mutates inst's state too
    if (
        isinstance(leaf, ast.Attribute)
        and leaf.attr.startswith("_")
        and _root_name(leaf.value) not in (None, "self")
    ):
        yield leaf


class DeferredWritebackSafetyRule(Rule):
    rule_id = "REP007"
    title = "lane-synced state is written back only via sanctioned surfaces"
    fix_hint = (
        "route instance writebacks through finalize()/sync_lanes()/"
        "flush_all()/import_state(), and raw Generator bit-state through "
        "rng_state()/set_rng_state()"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        df = ModuleDataflow.of(ctx)
        yield from self._check_lane_classes(ctx, df)
        yield from self._check_bit_state(ctx)

    # ------------------------------------------------------------------ #
    # (A) foreign private writes outside the writeback surfaces
    # ------------------------------------------------------------------ #
    def _check_lane_classes(
        self, ctx: ModuleContext, df: ModuleDataflow
    ) -> Iterator[Diagnostic]:
        for cls in df.class_defs.values():
            own_methods = {
                node.name
                for node in cls.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if not (
                _declares_family(cls) or own_methods & _WRITEBACK_METHODS
            ):
                continue
            view = df.class_view(cls.name)
            sanctioned = view.reachable(_SANCTIONED)
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in sanctioned:
                    continue
                seen_lines: Set[int] = set()
                for node in walk_body(method):
                    if not isinstance(
                        node, (ast.Assign, ast.AugAssign, ast.AnnAssign)
                    ):
                        continue
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        for leaf in _private_foreign_writes(target):
                            if leaf.lineno in seen_lines:
                                continue
                            seen_lines.add(leaf.lineno)
                            yield self.diagnostic(
                                ctx,
                                leaf,
                                f"`{cls.name}.{method.name}()` writes "
                                f"lane-synced private state "
                                f"`{_root_name(leaf.value)}.{leaf.attr}` "
                                "outside the sanctioned writeback surfaces",
                            )

    # ------------------------------------------------------------------ #
    # (B) raw Generator bit-state outside rng_state/set_rng_state
    # ------------------------------------------------------------------ #
    def _check_bit_state(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name in _RNG_STATE_FUNCS:
                continue
            # Local names aliasing a bit generator: assigned from an
            # expression ending `.bit_generator` or from a bit-generator
            # constructor call.
            aliases: Set[str] = set()
            for node in walk_body(fn):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    value = node.value
                    if (
                        isinstance(value, ast.Attribute)
                        and value.attr == "bit_generator"
                    ):
                        aliases.add(node.targets[0].id)
                    elif isinstance(value, ast.Call):
                        name = (
                            value.func.attr
                            if isinstance(value.func, ast.Attribute)
                            else (
                                value.func.id
                                if isinstance(value.func, ast.Name)
                                else None
                            )
                        )
                        if name in _BITGEN_CONSTRUCTORS:
                            aliases.add(node.targets[0].id)
            seen_lines: Set[int] = set()
            for node in walk_body(fn):
                if not (
                    isinstance(node, ast.Attribute) and node.attr == "state"
                ):
                    continue
                value = node.value
                is_bit_state = (
                    isinstance(value, ast.Attribute)
                    and value.attr == "bit_generator"
                ) or (isinstance(value, ast.Name) and value.id in aliases)
                if not is_bit_state or node.lineno in seen_lines:
                    continue
                seen_lines.add(node.lineno)
                yield self.diagnostic(
                    ctx,
                    node,
                    f"`{fn.name}()` touches raw Generator bit-state "
                    "(`.bit_generator.state`) outside "
                    "rng_state()/set_rng_state()",
                    hint=(
                        "use rng_state()/set_rng_state() from "
                        "repro.core.strategies.base — they pin the "
                        "deep-copy contract snapshots rely on"
                    ),
                )
