"""REP001 — no global or legacy RNG.

All randomness in ``src/repro`` must flow from an explicitly seeded
``numpy.random.default_rng(seed)`` (or a ``SeedSequence``-derived
generator).  The stdlib ``random`` module and the legacy global NumPy
API (``np.random.uniform`` …, ``np.random.seed``) read hidden process
state, so serial/parallel and batched/solo runs would diverge.  A bare
``default_rng()`` draws OS entropy and is equally non-reproducible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Rule

__all__ = ["GlobalRNGRule"]

#: The modern, seedable numpy.random surface that is allowed.
_ALLOWED_NUMPY_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "BitGenerator",
}


def _is_unseeded(node: ast.Call) -> bool:
    """A ``default_rng()`` / ``SeedSequence()`` call with no seed material."""
    if node.keywords:
        return False
    if not node.args:
        return True
    return len(node.args) == 1 and (
        isinstance(node.args[0], ast.Constant) and node.args[0].value is None
    )


class GlobalRNGRule(Rule):
    rule_id = "REP001"
    title = "no global/legacy RNG (random.*, np.random.<fn>, bare default_rng())"
    fix_hint = (
        "use numpy.random.default_rng(seed) with a seed derived from the "
        "game's SeedSequence channels"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node.func)
            if resolved is None:
                continue
            if resolved.startswith("random."):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"call to stdlib global RNG `{resolved}`",
                )
            elif resolved.startswith("numpy.random."):
                tail = resolved.split(".", 2)[2]
                if "." in tail:
                    # numpy.random.Generator.method etc. — attribute access
                    # on an allowed class, not a module-level draw.
                    continue
                if tail not in _ALLOWED_NUMPY_RANDOM:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"call to legacy global NumPy RNG `{resolved}`",
                    )
                elif tail in {"default_rng", "SeedSequence"} and _is_unseeded(node):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"`{resolved}()` without a seed draws OS entropy",
                        hint=(
                            "pass an explicit seed (int or SeedSequence) so "
                            "the stream is reproducible"
                        ),
                    )
