"""Shared AST helpers for the determinism rules."""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..engine import ModuleContext

__all__ = [
    "PROTOCOL_BASES",
    "component_classes",
    "class_methods",
    "self_attribute_assigns",
    "self_method_calls",
    "target_attr_and_names",
    "is_mutable_literal",
    "terminal_name",
]

#: Protocol base classes whose subclasses are game components with the
#: reset()/export_state()/import_state() lifecycle contract.
PROTOCOL_BASES = {
    "CollectorStrategy",
    "AdversaryStrategy",
    "QualityEvaluator",
    "StreamSource",
    "Trimmer",
    "PoisonInjector",
}

#: Component-shaped class names: the strategy/judge/injector/stream
#: family the byte-identity contract covers, matched by suffix when the
#: protocol base is not syntactically visible (re-exports, deep bases).
_COMPONENT_SUFFIX = re.compile(
    r"(Collector|Adversary|Strategy|Judge|Trigger|Injector|Evaluator"
    r"|Stream|Source|Trimmer)$"
)

#: Call targets that construct a NumPy RNG.
RNG_CONSTRUCTORS = {"default_rng", "Generator", "RandomState"}


def terminal_name(expr: ast.expr) -> Optional[str]:
    """The last dotted segment of a name/attribute expression."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_component_name(name: str) -> bool:
    return bool(_COMPONENT_SUFFIX.search(name.lstrip("_")))


def component_classes(ctx: ModuleContext) -> List[ast.ClassDef]:
    """Classes with the component lifecycle contract, in source order.

    A class qualifies when a base resolves (by terminal name) to one of
    the protocol bases, when its own name carries a component suffix, or
    when it derives — transitively, within the module — from a class
    that qualifies.
    """
    classes = [
        node for node in ast.walk(ctx.tree) if isinstance(node, ast.ClassDef)
    ]
    by_name = {cls.name: cls for cls in classes}
    qualified: Dict[str, bool] = {}

    def qualifies(cls: ast.ClassDef, stack: Set[str]) -> bool:
        if cls.name in qualified:
            return qualified[cls.name]
        if cls.name in stack:  # defensive: cyclic local bases
            return False
        stack = stack | {cls.name}
        result = _is_component_name(cls.name)
        if not result:
            for base in cls.bases:
                name = terminal_name(base)
                if name is None:
                    continue
                if name in PROTOCOL_BASES or _is_component_name(name):
                    result = True
                    break
                local = by_name.get(name)
                if local is not None and qualifies(local, stack):
                    result = True
                    break
        qualified[cls.name] = result
        return result

    return [cls for cls in classes if qualifies(cls, set())]


def class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """The class's directly defined methods, by name."""
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _walk_method(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a method body without descending into nested defs/classes."""
    pending: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while pending:
        node = pending.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        pending.extend(ast.iter_child_nodes(node))


def self_attribute_assigns(fn: ast.FunctionDef) -> Dict[str, List[ast.stmt]]:
    """``self.X`` attribute names assigned in the method body.

    Covers plain, annotated, augmented and tuple-unpacking assignments;
    nested function/class bodies are excluded (different ``self``).
    """

    def attr_targets(target: ast.expr) -> Iterator[str]:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield target.attr
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from attr_targets(element)

    assigns: Dict[str, List[ast.stmt]] = {}
    for node in _walk_method(fn):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            for name in attr_targets(target):
                assigns.setdefault(name, []).append(node)  # type: ignore[arg-type]
    return assigns


def self_method_calls(fn: ast.FunctionDef) -> Set[str]:
    """Names of methods the body invokes as ``self.m(...)``."""
    calls: Set[str] = set()
    for node in _walk_method(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            calls.add(node.func.attr)
    return calls


def target_attr_and_names(targets: Sequence[ast.expr]) -> Iterator[str]:
    """Every plain or attribute name bound by assignment targets."""
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, ast.Attribute):
            yield target.attr
        elif isinstance(target, (ast.Tuple, ast.List)):
            yield from target_attr_and_names(target.elts)


_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "collections.defaultdict",
    "collections.deque",
    "collections.OrderedDict",
    "collections.Counter",
}


def is_mutable_literal(ctx: ModuleContext, node: ast.expr) -> bool:
    """Whether an expression builds a fresh mutable container."""
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node.func)
        if resolved in _MUTABLE_CALLS:
            return True
        name = terminal_name(node.func)
        return name in {"defaultdict", "deque", "OrderedDict", "Counter"}
    return False
