"""REP002 — no unstable values flowing into seeds or fingerprints.

``hash()`` is salted per process (PYTHONHASHSEED), ``id()`` is an
address, and wall-clock reads differ per run — none of them may feed a
seed, an entropy pool, or a store fingerprint.  The rule flags a call to
one of those sources when its value syntactically flows into seed-like
context: a ``seed=``-style keyword, an argument of an RNG constructor,
an assignment to a seed/entropy/fingerprint-named binding, or any
expression inside a function whose name says it produces seeds or
fingerprints.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Rule
from .common import target_attr_and_names, terminal_name

__all__ = ["UnstableSeedMaterialRule"]

#: Call targets whose value is process- or time-dependent.
_UNSTABLE_CALLS = {
    "hash": "salted per process (PYTHONHASHSEED)",
    "id": "a memory address",
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.monotonic": "clock time",
    "time.monotonic_ns": "clock time",
    "time.perf_counter": "clock time",
    "time.perf_counter_ns": "clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "uuid.uuid4": "random per call",
    "os.urandom": "OS entropy",
}

_SEED_NAME = re.compile(r"(seed|entropy|fingerprint|cache_key|store_key)", re.I)
_SEED_FUNC = re.compile(r"(seed|entropy|fingerprint|cache_key|store_key)", re.I)

#: Terminal names of calls that consume seed material positionally.
_SEED_SINKS = {"default_rng", "SeedSequence", "RandomState", "seed", "spawn_key"}


class UnstableSeedMaterialRule(Rule):
    rule_id = "REP002"
    title = "no hash()/id()/time.time() flowing into seeds or fingerprints"
    fix_hint = (
        "derive seeds from SeedSequence channels and fingerprints from "
        "canonical_json/spec_fingerprint (stable across processes)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node.func)
            if resolved not in _UNSTABLE_CALLS:
                continue
            sink = self._seed_sink(ctx, node)
            if sink is None:
                continue
            yield self.diagnostic(
                ctx,
                node,
                f"`{resolved}()` is {_UNSTABLE_CALLS[resolved]} "
                f"but flows into {sink}",
            )

    # ------------------------------------------------------------------ #
    def _seed_sink(self, ctx: ModuleContext, node: ast.Call) -> str | None:
        """The seed-like context the call value flows into, if any."""
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.keyword):
                if anc.arg and _SEED_NAME.search(anc.arg):
                    return f"keyword `{anc.arg}=`"
            elif isinstance(anc, ast.Call) and anc is not node:
                name = terminal_name(anc.func)
                if name in _SEED_SINKS or (name and _SEED_FUNC.search(name)):
                    return f"call to `{name}(...)`"
            elif isinstance(anc, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets: List[ast.expr]
                if isinstance(anc, ast.Assign):
                    targets = list(anc.targets)
                else:
                    targets = [anc.target]
                for name in target_attr_and_names(targets):
                    if _SEED_NAME.search(name):
                        return f"assignment to `{name}`"
            elif isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _SEED_FUNC.search(anc.name):
                    return f"function `{anc.name}()`"
                return None  # stop at the enclosing function boundary
        return None
