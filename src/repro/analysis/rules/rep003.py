"""REP003 — no unordered iteration feeding canonical output.

Python ``set`` (and ``frozenset``) iteration order depends on insertion
history and hash salting, so a set that leaks into a fingerprint, a
``state_dict()``, or a reducer's canonical payload makes the artifact
byte-unstable.  The rule restricts itself to *canonicalizing* functions
(name matches fingerprint/canon/state_dict/export_state/spec_hash/
cache_key/reduce) and flags set-typed expressions used as an iteration
source or materialized by an order-preserving consumer (``list``,
``tuple``, ``enumerate``, ``str.join``) there.  ``sorted(...)`` is the
sanctioned fix and is never flagged; plain dict iteration is
insertion-ordered and allowed.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Rule
from .common import terminal_name

__all__ = ["UnorderedCanonicalIterationRule"]

_CANONICAL_FUNC = re.compile(
    r"(fingerprint|canon|state_dict|export_state|spec_hash|cache_key"
    r"|store_key|reduce)",
    re.I,
)

#: Order-preserving consumers for which set iteration order leaks out.
_ORDERED_CONSUMERS = {"list", "tuple", "enumerate"}


def _is_set_expr(ctx: ModuleContext, node: ast.expr) -> bool:
    """Whether the expression is syntactically set-typed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node.func)
        if resolved in {"set", "frozenset"}:
            return True
        name = terminal_name(node.func)
        return name in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        } and isinstance(node.func, ast.Attribute)
    return False


class UnorderedCanonicalIterationRule(Rule):
    rule_id = "REP003"
    title = "no set iteration feeding fingerprints/state_dict/reducers"
    fix_hint = "wrap the set in sorted(...) before it reaches canonical output"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _CANONICAL_FUNC.search(fn.name):
                continue
            yield from self._check_function(ctx, fn)

    # ------------------------------------------------------------------ #
    def _check_function(
        self, ctx: ModuleContext, fn: ast.AST
    ) -> Iterator[Diagnostic]:
        # Local names bound to a set expression inside this function:
        # `parts = {...}` followed by `"|".join(parts)` is the same leak.
        set_names = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_set_expr(ctx, node.value)
            ):
                set_names.add(node.targets[0].id)

        def is_setish(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name) and expr.id in set_names:
                return True
            return _is_set_expr(ctx, expr)

        for node in ast.walk(fn):
            source: Optional[ast.expr] = None
            how = ""
            if isinstance(node, (ast.For, ast.AsyncFor)):
                source, how = node.iter, "a for-loop"
            elif isinstance(node, ast.comprehension):
                source, how = node.iter, "a comprehension"
            elif isinstance(node, ast.Call):
                name = terminal_name(node.func)
                is_join = name == "join" and isinstance(node.func, ast.Attribute)
                if (name in _ORDERED_CONSUMERS or is_join) and node.args:
                    if is_setish(node.args[0]):
                        source, how = node.args[0], f"`{name}(...)`"
            if source is not None and is_setish(source):
                yield self.diagnostic(
                    ctx,
                    source,
                    "set iteration order is unstable but feeds "
                    f"{how} inside canonicalizing function "
                    f"`{self._enclosing_name(ctx, source)}()`",
                )

    @staticmethod
    def _enclosing_name(ctx: ModuleContext, node: ast.AST) -> str:
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc.name
        return "<module>"
