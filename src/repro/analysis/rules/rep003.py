"""REP003 — no unordered iteration feeding canonical output.

Python ``set`` (and ``frozenset``) iteration order depends on insertion
history and hash salting, so a set that leaks into a fingerprint, a
``state_dict()``, or a reducer's canonical payload makes the artifact
byte-unstable.  The rule restricts itself to *canonicalizing* functions
(name matches fingerprint/canon/state_dict/export_state/spec_hash/
cache_key/reduce) and flags set-typed expressions used as an iteration
source or materialized by an order-preserving consumer (``list``,
``tuple``, ``enumerate``, ``str.join``) there.  ``sorted(...)`` is the
sanctioned fix and is never flagged; plain dict iteration is
insertion-ordered and allowed.

Since PR 10 the rule is *interprocedural* (via
:mod:`repro.analysis.dataflow`): inside a canonicalizing function it
also flags

* iteration over (or ordered consumption of) the result of a local
  helper or ``self._*()`` method whose return value is set-typed,
  transitively through call chains;
* a call to a local helper that itself performs unordered set
  iteration — the helper laundering the order instability does not
  launder the taint; and
* passing a set-typed value to a helper parameter the helper iterates
  unordered.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from ..dataflow import ModuleDataflow, is_set_expr
from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Rule
from .common import terminal_name

__all__ = ["UnorderedCanonicalIterationRule"]

_CANONICAL_FUNC = re.compile(
    r"(fingerprint|canon|state_dict|export_state|spec_hash|cache_key"
    r"|store_key|reduce)",
    re.I,
)

#: Order-preserving consumers for which set iteration order leaks out.
_ORDERED_CONSUMERS = {"list", "tuple", "enumerate"}

#: Helpers whose names mark them as order-laundering sinks we never
#: flag calls *to* (sorted output is canonical by construction).
_SANCTIONED_CALLS = {"sorted", "min", "max", "sum", "len", "frozenset", "set"}


class UnorderedCanonicalIterationRule(Rule):
    rule_id = "REP003"
    title = "no set iteration feeding fingerprints/state_dict/reducers"
    fix_hint = "wrap the set in sorted(...) before it reaches canonical output"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        df = ModuleDataflow.of(ctx)
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _CANONICAL_FUNC.search(fn.name):
                continue
            yield from self._check_function(ctx, df, fn)

    # ------------------------------------------------------------------ #
    def _qualname(
        self, ctx: ModuleContext, fn: ast.AST
    ) -> str:
        parent = ctx.parent(fn)
        name = getattr(fn, "name", "<lambda>")
        if isinstance(parent, ast.ClassDef):
            return f"{parent.name}.{name}"
        return str(name)

    def _check_function(
        self, ctx: ModuleContext, df: ModuleDataflow, fn: ast.AST
    ) -> Iterator[Diagnostic]:
        qual = self._qualname(ctx, fn)
        fn_name = getattr(fn, "name", "<lambda>")

        # Local names bound to a set expression inside this function:
        # `parts = {...}` followed by `"|".join(parts)` is the same
        # leak.  Interprocedurally, a local bound to a call whose callee
        # returns a set is tainted the same way.
        set_names: Set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                if is_set_expr(ctx, node.value) or (
                    isinstance(node.value, ast.Call)
                    and df.returns_set(qual, node.value)
                ):
                    set_names.add(node.targets[0].id)

        def is_setish(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Name) and expr.id in set_names:
                return True
            if isinstance(expr, ast.Call) and df.returns_set(qual, expr):
                return True
            return is_set_expr(ctx, expr)

        flagged: Set[int] = set()

        def emit(
            source: ast.expr, how: str
        ) -> Iterator[Diagnostic]:
            if id(source) in flagged:
                return
            flagged.add(id(source))
            yield self.diagnostic(
                ctx,
                source,
                "set iteration order is unstable but feeds "
                f"{how} inside canonicalizing function "
                f"`{fn_name}()`",
            )

        for node in ast.walk(fn):
            source: Optional[ast.expr] = None
            how = ""
            if isinstance(node, (ast.For, ast.AsyncFor)):
                source, how = node.iter, "a for-loop"
            elif isinstance(node, ast.comprehension):
                source, how = node.iter, "a comprehension"
            elif isinstance(node, ast.Call):
                name = terminal_name(node.func)
                is_join = name == "join" and isinstance(node.func, ast.Attribute)
                if (name in _ORDERED_CONSUMERS or is_join) and node.args:
                    if is_setish(node.args[0]):
                        source, how = node.args[0], f"`{name}(...)`"
                if source is None and name not in _SANCTIONED_CALLS:
                    # Interprocedural sinks: the callee iterates a set
                    # unordered, or we pass a set into a parameter it
                    # iterates unordered.
                    helper = df.performs_unordered_iteration(qual, node)
                    if helper is not None and _CANONICAL_FUNC.search(helper):
                        helper = None  # reported inside the helper itself
                    if helper is not None:
                        yield from emit(
                            node,
                            f"helper `{helper}()` (which iterates a set "
                            "unordered)",
                        )
                        continue
                    for position in df.unordered_param_positions(qual, node):
                        if position < len(node.args) and is_setish(
                            node.args[position]
                        ):
                            yield from emit(
                                node.args[position],
                                f"argument {position} of `{name}(...)` "
                                "(iterated unordered by the callee)",
                            )
            if source is not None and is_setish(source):
                yield from emit(source, how)
