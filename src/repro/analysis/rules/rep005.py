"""REP005 — ``__init__``-assigned state must be restored by ``reset()``.

The lifecycle contract behind snapshot/restore byte-identity: any
attribute a component initializes and then mutates during play is
mid-game state, and ``reset()`` / ``import_state()`` must put it back.
The rule diffs attribute sets: it collects ``self.X`` assignments in
``__init__``, resolves the *restored* set through the module dataflow
layer (``self.m()`` calls transitively from ``reset`` and
``import_state``, plus module-level helpers that receive ``self`` —
``_shared_reset(self)`` counts), and flags

* **(A)** init-assigned attributes also mutated in play methods but
  absent from the restored set — a fresh game would inherit stale
  state; and
* **(B)** RNG attributes (``default_rng``/``Generator``/``RandomState``
  construction in ``__init__``) not re-created or restored — two runs
  from the same seed would diverge after the first ``reset()``.

Calibration methods (``fit``, ``fit_reference``) are pre-game setup by
contract and do not count as play.  Base classes defined in the same
module are folded into the method lookup so helper hierarchies (e.g. a
module-local two-level base) are analyzed once, at the class that
defines ``__init__``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from ..dataflow import ModuleDataflow
from ..diagnostics import Diagnostic
from ..engine import ModuleContext, Rule
from .common import (
    class_methods,
    component_classes,
    self_attribute_assigns,
    terminal_name,
)

__all__ = ["UnrestoredInitStateRule"]

#: Lifecycle / calibration methods that never count as "play".
_NON_PLAY = {"__init__", "reset", "export_state", "import_state", "fit", "fit_reference"}

_RNG_CONSTRUCTORS = {"default_rng", "Generator", "RandomState"}


def _constructs_rng(node: ast.stmt) -> bool:
    """Whether the assignment's RHS builds a NumPy RNG."""
    value = getattr(node, "value", None)
    if value is None:
        return False
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call):
            if terminal_name(sub.func) in _RNG_CONSTRUCTORS:
                return True
    return False


class UnrestoredInitStateRule(Rule):
    rule_id = "REP005"
    title = "__init__-assigned RNG/counter state not restored in reset()"
    fix_hint = (
        "re-create the attribute in reset() (and cover it in "
        "export_state/import_state) so a fresh game starts from a clean slate"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        df = ModuleDataflow.of(ctx)
        for cls in component_classes(ctx):
            own = class_methods(cls)
            init_fn = own.get("__init__")
            if init_fn is None:
                continue  # analyzed at the class that defines __init__
            view = df.class_view(cls.name)
            reset_reachable = view.reachable({"reset", "import_state"})
            restored = view.attrs_assigned({"reset", "import_state"})
            init_assigns = self_attribute_assigns(init_fn)
            # Calibration helpers (reachable from fit/fit_reference) are
            # pre-game setup just like their roots, not play mutation.
            calibration = view.reachable({"fit", "fit_reference"})

            play_mutations: Dict[str, str] = {}
            for name in view.methods:
                if name in _NON_PLAY or name in reset_reachable:
                    continue
                if name in calibration:
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue
                for attr in sorted(view.method_writes(name)):
                    play_mutations.setdefault(attr, name)

            for attr, stmts in sorted(init_assigns.items()):
                anchor = stmts[0]
                if attr in restored:
                    continue
                if attr in play_mutations:
                    yield self.diagnostic(
                        ctx,
                        anchor,
                        f"`{cls.name}.{attr}` is assigned in __init__ and "
                        f"mutated in `{play_mutations[attr]}()` but never "
                        "restored by reset()/import_state()",
                    )
                elif any(_constructs_rng(stmt) for stmt in stmts):
                    yield self.diagnostic(
                        ctx,
                        anchor,
                        f"`{cls.name}.{attr}` holds an RNG created in "
                        "__init__ but reset()/import_state() never "
                        "re-creates or restores it",
                    )
