"""The determinism rule set (REP001–REP008).

Each rule mechanizes one violation class from the repo's own bug
history; :data:`DEFAULT_RULES` is the set ``repro lint`` runs.
REP003/REP005 are interprocedural since PR 10 (via
:mod:`repro.analysis.dataflow`); REP006–REP008 audit the PR-8/PR-9
fusion and deferred-writeback layers statically.
"""

from __future__ import annotations

from typing import List, Type

from ..engine import Rule
from .rep001 import GlobalRNGRule
from .rep002 import UnstableSeedMaterialRule
from .rep003 import UnorderedCanonicalIterationRule
from .rep004 import MutableSharedStateRule
from .rep005 import UnrestoredInitStateRule
from .rep006 import FusionPurityRule
from .rep007 import DeferredWritebackSafetyRule
from .rep008 import SnapshotCompletenessRule

__all__ = [
    "GlobalRNGRule",
    "UnstableSeedMaterialRule",
    "UnorderedCanonicalIterationRule",
    "MutableSharedStateRule",
    "UnrestoredInitStateRule",
    "FusionPurityRule",
    "DeferredWritebackSafetyRule",
    "SnapshotCompletenessRule",
    "DEFAULT_RULE_CLASSES",
    "all_rules",
]

DEFAULT_RULE_CLASSES: List[Type[Rule]] = [
    GlobalRNGRule,
    UnstableSeedMaterialRule,
    UnorderedCanonicalIterationRule,
    MutableSharedStateRule,
    UnrestoredInitStateRule,
    FusionPurityRule,
    DeferredWritebackSafetyRule,
    SnapshotCompletenessRule,
]


def all_rules() -> List[Rule]:
    """A fresh instance of every default rule, in id order."""
    return [cls() for cls in DEFAULT_RULE_CLASSES]
