"""The determinism rule set (REP001–REP005).

Each rule mechanizes one violation class from the repo's own bug
history; :data:`DEFAULT_RULES` is the set ``repro lint`` runs.
"""

from __future__ import annotations

from typing import List, Type

from ..engine import Rule
from .rep001 import GlobalRNGRule
from .rep002 import UnstableSeedMaterialRule
from .rep003 import UnorderedCanonicalIterationRule
from .rep004 import MutableSharedStateRule
from .rep005 import UnrestoredInitStateRule

__all__ = [
    "GlobalRNGRule",
    "UnstableSeedMaterialRule",
    "UnorderedCanonicalIterationRule",
    "MutableSharedStateRule",
    "UnrestoredInitStateRule",
    "DEFAULT_RULE_CLASSES",
    "all_rules",
]

DEFAULT_RULE_CLASSES: List[Type[Rule]] = [
    GlobalRNGRule,
    UnstableSeedMaterialRule,
    UnorderedCanonicalIterationRule,
    MutableSharedStateRule,
    UnrestoredInitStateRule,
]


def all_rules() -> List[Rule]:
    """A fresh instance of every default rule, in id order."""
    return [cls() for cls in DEFAULT_RULE_CLASSES]
