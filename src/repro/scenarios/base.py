"""Scenario descriptors: declarative, cacheable, resumable experiments.

A *scenario* is a registered description of one paper artifact (or any
future workload): a name, typed parameters with quick/full defaults, a
*plan* builder that expands the parameters into grid-order sweep cells
(:class:`~repro.runtime.spec.GameSpec` or
:class:`~repro.runtime.spec.TaskSpec`) plus the in-worker reducer, an
*aggregate* step folding grid-order records into the artifact value, and
a *renderer* producing the printed table.  Because execution always goes
through :class:`~repro.runtime.runner.SweepRunner`, every scenario
inherits the whole runtime stack for free: process workers, lockstep rep
batching, and — with a :class:`~repro.runtime.store.ResultStore` —
per-cell persistence, crash resumability and warm-cache replay with zero
game executions.

The separation matters for the store: records are keyed per *cell*, so
re-running a scenario with one changed parameter only recomputes the
cells that parameter actually touches, and ``scenario report`` can
re-aggregate and re-render entirely from disk via the run's manifest
(the grid-order list of cell keys persisted next to the records).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..runtime import (
    FailureRecord,
    FaultInjector,
    FaultPlan,
    ResultStore,
    SweepRunner,
    SweepStats,
)
from ..runtime.store import canonical_json

__all__ = [
    "Scenario",
    "ScenarioError",
    "ScenarioParam",
    "ScenarioPlan",
    "ScenarioRun",
    "parse_bool",
    "parse_floats",
    "parse_ints",
    "report_scenario",
    "resolve_params",
    "run_scenario",
]

#: Manifest document format; bump to invalidate existing manifests.
MANIFEST_FORMAT = 1


class ScenarioError(RuntimeError):
    """Raised for unusable scenario input (unknown name, bad params,
    missing manifest/records on report)."""


# --------------------------------------------------------------------- #
# typed parameters
# --------------------------------------------------------------------- #
def parse_bool(text: str) -> bool:
    lowered = str(text).strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"not a boolean: {text!r}")


def parse_floats(text: str) -> Tuple[float, ...]:
    items = [item.strip() for item in str(text).split(",") if item.strip()]
    if not items:
        raise ValueError("expected a comma-separated float list")
    return tuple(float(item) for item in items)


def parse_ints(text: str) -> Tuple[int, ...]:
    items = [item.strip() for item in str(text).split(",") if item.strip()]
    if not items:
        raise ValueError("expected a comma-separated int list")
    return tuple(int(item) for item in items)


@dataclass(frozen=True)
class ScenarioParam:
    """One typed scenario parameter with per-scale defaults.

    ``parse`` turns a CLI string into the typed value (``int``,
    ``float``, :func:`parse_floats`, …); ``quick`` and ``full`` are the
    defaults the two scales resolve to (``full`` falls back to ``quick``
    when omitted — a scale-independent parameter).
    """

    name: str
    parse: Callable[[str], Any]
    quick: Any
    full: Any = None
    help: str = ""

    def default(self, scale: str) -> Any:
        if scale == "full" and self.full is not None:
            return self.full
        return self.quick


@dataclass(frozen=True)
class ScenarioPlan:
    """A scenario's executable half: grid-order cells plus runner config."""

    specs: Sequence[Any]
    reduce: Optional[Callable] = None
    rep_batch: Union[None, int, str] = None


@dataclass(frozen=True)
class Scenario:
    """One registered, declarative experiment.

    ``plan(params)`` expands resolved parameters into a
    :class:`ScenarioPlan`; ``aggregate(params, records)`` folds the
    grid-order records into the artifact value; ``render(params,
    value)`` produces the printed artifact.  Aggregate and render must
    work identically on fresh records and on records decoded from the
    result store — that equivalence is what makes warm-cache replay and
    ``scenario report`` byte-identical to a cold run.
    """

    name: str
    description: str
    plan: Callable[[Mapping[str, Any]], ScenarioPlan]
    aggregate: Callable[[Mapping[str, Any], List[Any]], Any]
    render: Callable[[Mapping[str, Any], Any], str]
    params: Tuple[ScenarioParam, ...] = ()

    def resolve_params(
        self,
        scale: str = "quick",
        overrides: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, Any]:
        """Scale defaults merged with parsed ``--param`` overrides."""
        if scale not in ("quick", "full"):
            raise ScenarioError(f"unknown scale {scale!r} (quick|full)")
        resolved = {p.name: p.default(scale) for p in self.params}
        by_name = {p.name: p for p in self.params}
        for key, raw in (overrides or {}).items():
            if key not in by_name:
                raise ScenarioError(
                    f"scenario {self.name!r} has no parameter {key!r}; "
                    f"options: {sorted(by_name) or '(none)'}"
                )
            try:
                resolved[key] = by_name[key].parse(raw)
            except (TypeError, ValueError) as exc:
                raise ScenarioError(
                    f"bad value for {self.name}.{key}: {exc}"
                ) from exc
        return resolved


def resolve_params(
    scenario: Scenario,
    scale: str = "quick",
    overrides: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Module-level convenience wrapper for :meth:`Scenario.resolve_params`."""
    return scenario.resolve_params(scale, overrides)


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioRun:
    """Everything one scenario invocation produced."""

    name: str
    scale: str
    params: Mapping[str, Any]
    records: List[Any]
    value: Any
    text: str
    stats: SweepStats
    manifest: Optional[str] = None  # manifest name, when a store was used
    #: Grid-order quarantined-cell records (empty on a clean run).
    failures: Tuple[FailureRecord, ...] = ()


def _params_jsonable(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Params as a JSON document (tuples become lists)."""

    def convert(value: Any) -> Any:
        if isinstance(value, (list, tuple)):
            return [convert(v) for v in value]
        return value

    return {key: convert(value) for key, value in params.items()}


def _params_digest(params: Mapping[str, Any]) -> str:
    return hashlib.sha256(
        canonical_json(_params_jsonable(params)).encode("utf-8")
    ).hexdigest()[:12]


def _render_failures(
    name: str, failures: Sequence[FailureRecord], total: int
) -> str:
    """The text a quarantined run prints instead of its artifact."""
    lines = [
        f"scenario {name}: {len(failures)}/{total} cells quarantined "
        "(no artifact rendered; re-run to retry exactly these cells)"
    ]
    for failure in failures:
        lines.append(
            f"  cell {failure.index} [{failure.kind}] after "
            f"{failure.attempts} attempt(s): {failure.error}"
        )
    return "\n".join(lines)


def run_scenario(
    scenario: Scenario,
    scale: str = "quick",
    overrides: Optional[Mapping[str, str]] = None,
    workers: int = 1,
    rep_batch: Union[None, int, str] = None,
    store: Optional[ResultStore] = None,
    on_error: str = "raise",
    timeout: Optional[float] = None,
    retries: int = 0,
    faults: Union[FaultInjector, FaultPlan, None] = None,
) -> ScenarioRun:
    """Plan, execute, aggregate and render one scenario.

    With a store attached, already-played cells load from disk, fresh
    records persist as they complete (interrupt-safe), and a manifest
    named after the scenario records the grid-order cell keys so
    :func:`report_scenario` can replay without executing anything.
    ``rep_batch=None`` defers to the plan's own setting.

    ``on_error``/``timeout``/``retries``/``faults`` configure the
    runner's supervision (see
    :class:`~repro.runtime.runner.SweepRunner`).  Under
    ``on_error="quarantine"`` a run with permanently failed cells skips
    aggregation (``value=None``) and renders a failure summary instead;
    with a store, a ``<name>.failures`` manifest is written next to the
    key manifest (and cleared again by the next clean run), and —
    because quarantined cells are never persisted — simply re-running
    the scenario against the same store retries exactly the failed
    cells and heals the artifact.
    """
    params = scenario.resolve_params(scale, overrides)
    plan = scenario.plan(params)
    runner = SweepRunner(
        workers=workers,
        reduce=plan.reduce,
        rep_batch=plan.rep_batch if rep_batch is None else rep_batch,
        store=store,
        on_error=on_error,
        timeout=timeout,
        retries=retries,
        faults=faults,
    )
    records = runner.run(list(plan.specs))
    failures = tuple(runner.last_failures)
    if failures:
        # FailureRecords sit in the grid slots; the scenario's own
        # aggregate would choke on them (and the artifact would be a
        # lie anyway).  Report the damage instead.
        value = None
        text = _render_failures(scenario.name, failures, len(records))
    else:
        value = scenario.aggregate(params, records)
        text = scenario.render(params, value)

    manifest_name = None
    if store is not None:
        manifest_name = scenario.name
        store.save_manifest(
            manifest_name,
            {
                "format": MANIFEST_FORMAT,
                "scenario": scenario.name,
                "scale": scale,
                "params": _params_jsonable(params),
                "params_digest": _params_digest(params),
                "code_version": store.code_version,
                # the runner already hashed every spec for the cache
                # lookup; reuse that pass instead of re-canonicalizing
                "keys": runner.last_keys,
            },
        )
        failures_name = f"{scenario.name}.failures"
        if failures:
            keys = runner.last_keys or []
            store.save_manifest(
                failures_name,
                {
                    "format": MANIFEST_FORMAT,
                    "scenario": scenario.name,
                    "code_version": store.code_version,
                    "quarantined": [
                        {
                            "index": failure.index,
                            "key": (
                                keys[failure.index]
                                if failure.index < len(keys)
                                else None
                            ),
                            "kind": failure.kind,
                            "error": failure.error,
                            "attempts": failure.attempts,
                            "tags": _params_jsonable(failure.tags),
                        }
                        for failure in failures
                    ],
                },
            )
        else:
            store.delete_manifest(failures_name)
    return ScenarioRun(
        name=scenario.name,
        scale=scale,
        params=params,
        records=records,
        value=value,
        text=text,
        stats=runner.last_stats,
        manifest=manifest_name,
        failures=failures,
    )


def report_scenario(scenario: Scenario, store: ResultStore) -> ScenarioRun:
    """Re-render a scenario purely from its stored manifest and records.

    No cell is ever executed: the manifest fixes the grid-order key
    list, every record must already be in the store (a missing or
    corrupt record raises :class:`ScenarioError` naming the offender),
    and aggregation/rendering run exactly as in :func:`run_scenario` —
    so the report is byte-identical to the run that wrote the manifest.
    """
    manifest = store.load_manifest(scenario.name)
    if manifest is None:
        raise ScenarioError(
            f"no stored run of scenario {scenario.name!r} under "
            f"{store.root} — run `repro scenario run {scenario.name}` first"
        )
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ScenarioError(
            f"manifest for {scenario.name!r} has unsupported format "
            f"{manifest.get('format')!r}"
        )
    if manifest.get("code_version") != store.code_version:
        raise ScenarioError(
            f"manifest for {scenario.name!r} was written by code version "
            f"{manifest.get('code_version')!r} (store is "
            f"{store.code_version!r}); re-run the scenario"
        )
    params = manifest.get("params", {})
    keys = manifest.get("keys", [])
    miss = object()
    records = []
    for index, key in enumerate(keys):
        record = store.load(key, miss)
        if record is miss:
            raise ScenarioError(
                f"record {index}/{len(keys)} of scenario "
                f"{scenario.name!r} is missing or corrupt (key {key[:12]}…); "
                f"re-run `repro scenario run {scenario.name}`"
            )
        records.append(record)
    value = scenario.aggregate(params, records)
    text = scenario.render(params, value)
    return ScenarioRun(
        name=scenario.name,
        scale=str(manifest.get("scale", "quick")),
        params=params,
        records=records,
        value=value,
        text=text,
        stats=SweepStats(total=len(keys), cached=len(keys), played=0),
        manifest=scenario.name,
    )
