"""The scenario registry: name → :class:`~repro.scenarios.base.Scenario`.

Every paper artifact registers here (see
:mod:`repro.scenarios.artifacts`), and this registry — not the CLI — is
the extension point for new workloads: define a scenario (plan,
aggregate, render, typed params), call :func:`register_scenario`, and it
is immediately runnable via ``repro scenario run <name>``, cacheable in
the result store, and reportable from its manifest.  Nothing else needs
to change.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from .base import Scenario, ScenarioError

__all__ = [
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "scenario_names",
]

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario under its name; duplicate names are an error."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ScenarioError(
            f"unknown scenario {name!r}; options: {scenario_names()}"
        ) from exc


def scenario_names() -> List[str]:
    """All registered names, sorted."""
    return sorted(_REGISTRY)


def iter_scenarios() -> Iterator[Scenario]:
    """Registered scenarios in name order."""
    for name in scenario_names():
        yield _REGISTRY[name]
