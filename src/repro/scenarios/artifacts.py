"""Every paper artifact as a registered scenario.

Tables I–IV, the k-means panels (Figs. 4/5), the classifier panels
(Figs. 7/8), the LDP comparison (Fig. 9) and the beyond-the-paper
meta-game tournament are all declared here as
:class:`~repro.scenarios.base.Scenario` entries — typed parameters with
quick/full defaults, a plan expanding to sweep cells, a grid-order
aggregate, and the exact renderer the old ad-hoc CLI wrappers used (the
printed artifacts are byte-identical to the pre-registry CLI).

Game sweeps (Table III, Figs. 4/5, metagame) reuse the experiment
modules' plan/aggregate split; analytic or wrapped computations
(Tables I/II/IV, Figs. 7/8/9) ride :class:`~repro.runtime.spec.TaskSpec`
cells, so *every* artifact is cacheable and resumable through the result
store at its natural cell granularity.
"""

from __future__ import annotations

from functools import partial
from typing import Any, List, Mapping

from ..core.game import UltimatumPayoffs, build_ultimatum_game
from ..datasets import DATASETS, dataset_info
from ..experiments import (
    CostConfig,
    EquilibriumConfig,
    LDPConfig,
    NonEquilibriumConfig,
    SOMConfig,
    SVMConfig,
    TournamentConfig,
    aggregate_cost,
    aggregate_kmeans,
    aggregate_ldp,
    aggregate_nonequilibrium,
    aggregate_tournament,
    cost_specs,
    format_table,
    kmeans_plan,
    ldp_specs,
    nonequilibrium_plan,
    run_som_experiment,
    run_svm_experiment,
    tournament_plan,
)
from ..runtime import ComponentSpec, TaskSpec
from .base import (
    Scenario,
    ScenarioParam,
    ScenarioPlan,
    parse_bool,
    parse_floats,
)
from .registry import register_scenario

__all__ = ["ultimatum_rows", "dataset_rows"]


def _single(params: Mapping[str, Any], records: List[Any]) -> Any:
    """Aggregate for single-cell scenarios: the one record is the value."""
    if len(records) != 1:
        raise ValueError(f"expected exactly one record, got {len(records)}")
    return records[0]


# --------------------------------------------------------------------- #
# Table I — ultimatum game payoff matrix
# --------------------------------------------------------------------- #
def ultimatum_rows() -> list:
    """The Table I rows (module-level so the task cell is picklable)."""
    game = build_ultimatum_game(UltimatumPayoffs())
    equilibria = game.pure_nash_equilibria()
    rows = []
    for i, row_label in enumerate(game.row_labels):
        for j, col_label in enumerate(game.col_labels):
            rows.append(
                (
                    row_label,
                    col_label,
                    game.row_payoffs[i, j],
                    game.col_payoffs[i, j],
                    "yes" if (i, j) in equilibria else "",
                )
            )
    return rows


def _table1_plan(params: Mapping[str, Any]) -> ScenarioPlan:
    return ScenarioPlan(
        specs=[
            TaskSpec(ComponentSpec(ultimatum_rows), tags={"artifact": "table1"})
        ]
    )


def _table1_render(params: Mapping[str, Any], rows: list) -> str:
    return format_table(
        ["adversary", "collector", "adv payoff", "col payoff", "Nash"],
        rows,
        title="Table I: ultimatum game",
    )


register_scenario(
    Scenario(
        name="table1",
        description="ultimatum game payoff matrix (Table I)",
        plan=_table1_plan,
        aggregate=_single,
        render=_table1_render,
    )
)


# --------------------------------------------------------------------- #
# Table II — dataset information
# --------------------------------------------------------------------- #
def dataset_rows(generate: bool) -> list:
    """The Table II rows; ``generate=True`` verifies by regenerating."""
    verified = dataset_info(generate=generate)
    return [
        (info.name, DATASETS[key].instances, info.features, info.clusters)
        for key, info in verified.items()
    ]


def _table2_plan(params: Mapping[str, Any]) -> ScenarioPlan:
    return ScenarioPlan(
        specs=[
            TaskSpec(
                ComponentSpec(dataset_rows, {"generate": bool(params["generate"])}),
                tags={"artifact": "table2"},
            )
        ]
    )


def _table2_render(params: Mapping[str, Any], rows: list) -> str:
    return format_table(
        ["Dataset", "Instances", "Features", "Clusters"],
        rows,
        title="Table II: dataset information",
    )


register_scenario(
    Scenario(
        name="table2",
        description="dataset information (Table II)",
        plan=_table2_plan,
        aggregate=_single,
        render=_table2_render,
        params=(
            ScenarioParam(
                "generate",
                parse_bool,
                quick=False,
                full=True,
                help="regenerate every dataset to verify the table",
            ),
        ),
    )
)


# --------------------------------------------------------------------- #
# Table III — non-equilibrium mixed-strategy results
# --------------------------------------------------------------------- #
def _table3_config(params: Mapping[str, Any]) -> NonEquilibriumConfig:
    return NonEquilibriumConfig(
        repetitions=int(params["repetitions"]),
        p_values=tuple(float(p) for p in params["p_values"]),
    )


def _table3_plan(params: Mapping[str, Any]) -> ScenarioPlan:
    config = _table3_config(params)
    return ScenarioPlan(
        specs=nonequilibrium_plan(config), rep_batch=config.rep_batch
    )


def _table3_aggregate(params: Mapping[str, Any], records: List[Any]) -> list:
    return aggregate_nonequilibrium(_table3_config(params), records)


def _table3_render(params: Mapping[str, Any], rows: list) -> str:
    return format_table(
        ["p", "avg termination", "Titfortat", "Elastic"],
        [
            (
                r.p,
                r.average_termination_rounds,
                r.titfortat_poison_fraction,
                r.elastic_poison_fraction,
            )
            for r in rows
        ],
        title="Table III: non-equilibrium results",
    )


register_scenario(
    Scenario(
        name="table3",
        description="non-equilibrium results (Table III)",
        plan=_table3_plan,
        aggregate=_table3_aggregate,
        render=_table3_render,
        params=(
            ScenarioParam(
                "repetitions", int, quick=4, full=25,
                help="Monte Carlo repetitions per (p, scheme) cell",
            ),
            ScenarioParam(
                "p_values",
                parse_floats,
                quick=(0.0, 0.25, 0.5, 0.75, 1.0),
                full=NonEquilibriumConfig().p_values,
                help="equilibrium-probability grid of the mixed adversary",
            ),
        ),
    )
)


# --------------------------------------------------------------------- #
# Table IV — roundwise Elastic cost
# --------------------------------------------------------------------- #
def _table4_plan(params: Mapping[str, Any]) -> ScenarioPlan:
    return ScenarioPlan(specs=cost_specs(CostConfig()))


def _table4_aggregate(params: Mapping[str, Any], records: List[Any]) -> list:
    return aggregate_cost(CostConfig(), records)


def _table4_render(params: Mapping[str, Any], rows: list) -> str:
    return format_table(
        ["Round_no", "k=0.5 (%)", "k=0.1 (%)"],
        [(r.round_no, 100 * r.cost_k_high, 100 * r.cost_k_low) for r in rows],
        title="Table IV: roundwise Elastic cost",
    )


register_scenario(
    Scenario(
        name="table4",
        description="Elastic roundwise cost (Table IV)",
        plan=_table4_plan,
        aggregate=_table4_aggregate,
        render=_table4_render,
    )
)


# --------------------------------------------------------------------- #
# Figs. 4 / 5 — k-means under equilibrium play
# --------------------------------------------------------------------- #
def _kmeans_config(params: Mapping[str, Any], t_th: float) -> EquilibriumConfig:
    return EquilibriumConfig(
        dataset=str(params["dataset"]),
        t_th=float(t_th),
        attack_ratios=tuple(float(r) for r in params["ratios"]),
        repetitions=int(params["repetitions"]),
        rounds=int(params["rounds"]),
    )


def _kmeans_plan(params: Mapping[str, Any], t_th: float) -> ScenarioPlan:
    config = _kmeans_config(params, t_th)
    specs, reduce = kmeans_plan(config)
    return ScenarioPlan(specs=specs, reduce=reduce, rep_batch=config.rep_batch)


def _kmeans_aggregate(
    params: Mapping[str, Any], records: List[Any], t_th: float
) -> list:
    return aggregate_kmeans(_kmeans_config(params, t_th), records)


def _kmeans_render(params: Mapping[str, Any], cells: list, t_th: float) -> str:
    return format_table(
        ["scheme", "attack ratio", "SSE", "Distance"],
        [(c.scheme, c.attack_ratio, c.sse, c.distance) for c in cells],
        title=f"k-means ({params['dataset']}, T_th={t_th})",
    )


def _kmeans_params() -> tuple:
    return (
        ScenarioParam("dataset", str, quick="control", help="dataset registry name"),
        ScenarioParam(
            "ratios",
            parse_floats,
            quick=(0.002, 0.01, 0.1, 0.35),
            full=(0.002, 0.006, 0.01, 0.05, 0.1, 0.15, 0.2, 0.35, 0.5),
            help="attack-ratio grid",
        ),
        ScenarioParam(
            "repetitions", int, quick=1, full=5,
            help="Monte Carlo repetitions per cell",
        ),
        ScenarioParam("rounds", int, quick=10, full=20, help="rounds per game"),
    )


for _name, _t_th, _fig in (("fig4", 0.9, "Fig. 4"), ("fig5", 0.97, "Fig. 5")):
    register_scenario(
        Scenario(
            name=_name,
            description=f"k-means comparison, T_th={_t_th} ({_fig})",
            plan=partial(_kmeans_plan, t_th=_t_th),
            aggregate=partial(_kmeans_aggregate, t_th=_t_th),
            render=partial(_kmeans_render, t_th=_t_th),
            params=_kmeans_params(),
        )
    )


# --------------------------------------------------------------------- #
# Fig. 7 — SVM comparison
# --------------------------------------------------------------------- #
def _fig7_plan(params: Mapping[str, Any]) -> ScenarioPlan:
    config = SVMConfig(svm_iterations=int(params["svm_iterations"]))
    return ScenarioPlan(
        specs=[
            TaskSpec(
                ComponentSpec(run_svm_experiment, {"config": config}),
                tags={"artifact": "fig7"},
            )
        ]
    )


def _fig7_render(params: Mapping[str, Any], results: list) -> str:
    return format_table(
        ["scheme", "accuracy %"],
        [(r.scheme, 100 * r.accuracy) for r in results],
        title="Fig. 7: SVM comparison (Control, T_th=0.95, ratio 0.4)",
    )


register_scenario(
    Scenario(
        name="fig7",
        description="SVM comparison (Fig. 7, includes Fig. 6a ground truth)",
        plan=_fig7_plan,
        aggregate=_single,
        render=_fig7_render,
        params=(
            ScenarioParam(
                "svm_iterations", int, quick=10_000, full=20_000,
                help="SGD iterations of the one-vs-rest linear SVM",
            ),
        ),
    )
)


# --------------------------------------------------------------------- #
# Fig. 8 — SOM comparison
# --------------------------------------------------------------------- #
def _fig8_plan(params: Mapping[str, Any]) -> ScenarioPlan:
    config = SOMConfig(
        bulk_size=int(params["bulk_size"]),
        som_iterations=int(params["som_iterations"]),
        rounds=int(params["rounds"]),
        grid=(int(params["grid_rows"]), int(params["grid_cols"])),
    )
    return ScenarioPlan(
        specs=[
            TaskSpec(
                ComponentSpec(run_som_experiment, {"config": config}),
                tags={"artifact": "fig8"},
            )
        ]
    )


def _fig8_render(params: Mapping[str, Any], results: list) -> str:
    return format_table(
        ["scheme", "minority kept", "poison share", "clusters", "QE"],
        [
            (
                r.scheme,
                r.minority_retained,
                r.poison_retained_fraction,
                r.cluster_count,
                r.quantization_error,
            )
            for r in results
        ],
        title="Fig. 8: SOM comparison (Creditcard)",
    )


register_scenario(
    Scenario(
        name="fig8",
        description="SOM comparison (Fig. 8, includes Fig. 6b ground truth)",
        plan=_fig8_plan,
        aggregate=_single,
        render=_fig8_render,
        params=(
            ScenarioParam("bulk_size", int, quick=1200, full=3000,
                          help="bulk sample size of the Creditcard stand-in"),
            ScenarioParam("som_iterations", int, quick=2500, full=6000,
                          help="SOM training iterations"),
            ScenarioParam("rounds", int, quick=6, full=10,
                          help="collection-game rounds"),
            ScenarioParam("grid_rows", int, quick=10, full=20, help="SOM grid rows"),
            ScenarioParam("grid_cols", int, quick=10, full=20, help="SOM grid cols"),
        ),
    )
)


# --------------------------------------------------------------------- #
# Fig. 9 — LDP trimming vs EMF
# --------------------------------------------------------------------- #
def _fig9_config(params: Mapping[str, Any]) -> LDPConfig:
    return LDPConfig(
        epsilons=tuple(float(e) for e in params["epsilons"]),
        attack_ratios=tuple(float(r) for r in params["ratios"]),
        n_users=int(params["n_users"]),
        rounds=int(params["rounds"]),
        repetitions=int(params["repetitions"]),
        reference_size=int(params["reference_size"]),
    )


def _fig9_plan(params: Mapping[str, Any]) -> ScenarioPlan:
    return ScenarioPlan(specs=ldp_specs(_fig9_config(params)))


def _fig9_aggregate(params: Mapping[str, Any], records: List[Any]) -> list:
    return aggregate_ldp(_fig9_config(params), records)


def _fig9_render(params: Mapping[str, Any], cells: list) -> str:
    return format_table(
        ["attack ratio", "epsilon", "scheme", "MSE"],
        [(c.attack_ratio, c.epsilon, c.scheme, c.mse) for c in cells],
        title="Fig. 9: LDP comparison",
    )


register_scenario(
    Scenario(
        name="fig9",
        description="LDP trimming vs EMF (Fig. 9)",
        plan=_fig9_plan,
        aggregate=_fig9_aggregate,
        render=_fig9_render,
        params=(
            ScenarioParam(
                "epsilons",
                parse_floats,
                quick=(1.0, 2.0, 3.0, 5.0),
                full=LDPConfig().epsilons,
                help="privacy budgets",
            ),
            ScenarioParam(
                "ratios",
                parse_floats,
                quick=(0.05, 0.2),
                full=(0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45),
                help="attack-ratio grid",
            ),
            ScenarioParam("n_users", int, quick=1000, full=2000,
                          help="honest users per round"),
            ScenarioParam("rounds", int, quick=3, full=5,
                          help="collection rounds"),
            ScenarioParam("repetitions", int, quick=2, full=5,
                          help="Monte Carlo repetitions per cell"),
            ScenarioParam("reference_size", int, quick=2000, full=4000,
                          help="public calibration sample size"),
        ),
    )
)


# --------------------------------------------------------------------- #
# Meta-game tournament (beyond the paper)
# --------------------------------------------------------------------- #
def _metagame_config(params: Mapping[str, Any]) -> TournamentConfig:
    return TournamentConfig(
        repetitions=int(params["repetitions"]), rounds=int(params["rounds"])
    )


def _metagame_plan(params: Mapping[str, Any]) -> ScenarioPlan:
    config = _metagame_config(params)
    specs, reduce = tournament_plan(config)
    return ScenarioPlan(specs=specs, reduce=reduce, rep_batch=config.rep_batch)


def _metagame_aggregate(params: Mapping[str, Any], records: List[Any]) -> Any:
    return aggregate_tournament(_metagame_config(params), records)


def _metagame_render(params: Mapping[str, Any], result: Any) -> str:
    rows = []
    for i, aname in enumerate(result.adversary_names):
        for j, cname in enumerate(result.collector_names):
            rows.append((aname, cname, result.adversary_payoffs[i, j]))
    mixtures = ", ".join(
        f"{n}={w:.2f}"
        for n, w in zip(result.collector_names, result.collector_mixture, strict=False)
        if w > 1e-6
    )
    return format_table(
        ["adversary", "collector", "adversary payoff"],
        rows,
        title=f"Meta-game tournament — minimax collector: {mixtures}",
    )


register_scenario(
    Scenario(
        name="metagame",
        description="empirical strategy tournament (beyond the paper)",
        plan=_metagame_plan,
        aggregate=_metagame_aggregate,
        render=_metagame_render,
        params=(
            ScenarioParam(
                "repetitions", int, quick=2, full=4,
                help="repetitions per (collector, adversary) cell",
            ),
            ScenarioParam("rounds", int, quick=10, full=20,
                          help="rounds per game"),
        ),
    )
)
