"""Declarative scenario layer: every paper artifact as a registry entry.

A scenario bundles what used to be an ad-hoc CLI wrapper — grid
construction, execution, aggregation, rendering — into a declarative
descriptor running on the :mod:`repro.runtime` sweep stack, so each
artifact is parallel, rep-batched, cacheable and resumable through the
content-addressed :class:`~repro.runtime.store.ResultStore`.

Quickstart::

    from repro.runtime import ResultStore
    from repro.scenarios import get_scenario, run_scenario

    store = ResultStore(".repro-cache")
    run = run_scenario(get_scenario("table4"), scale="quick", store=store)
    print(run.text)                 # the rendered Table IV
    print(run.stats.describe())     # "20 cells: 0 loaded from store, 20 played"
    # run it again: every cell replays from disk, zero games execute

Registering a new workload is the extension point for experiment
growth::

    from repro.scenarios import Scenario, register_scenario
    register_scenario(Scenario(name=..., plan=..., aggregate=..., render=...))
"""

from .base import (
    Scenario,
    ScenarioError,
    ScenarioParam,
    ScenarioPlan,
    ScenarioRun,
    report_scenario,
    resolve_params,
    run_scenario,
)
from .registry import (
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

# Importing the artifact definitions populates the registry.
from . import artifacts  # noqa: E402,F401  (import for side effect)

__all__ = [
    "Scenario",
    "ScenarioError",
    "ScenarioParam",
    "ScenarioPlan",
    "ScenarioRun",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "report_scenario",
    "resolve_params",
    "run_scenario",
    "scenario_names",
]
