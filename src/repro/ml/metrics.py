"""Evaluation metrics shared by the experiments.

Implements exactly what the paper's figures report: SSE (Fig. 4/5),
centroid 'Distance' to ground truth under optimal matching (Fig. 4/5),
classification accuracy and the per-class PPV/FDR panels of the SVM
confusion charts (Fig. 6a/7), and MSE for the LDP study (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

__all__ = [
    "sse",
    "centroid_distance",
    "accuracy",
    "confusion_matrix",
    "ConfusionSummary",
    "confusion_summary",
    "mse",
]


def sse(data, centroids) -> float:
    """Sum of squared errors of ``data`` against its nearest centroids."""
    arr = np.asarray(data, dtype=float)
    cents = np.asarray(centroids, dtype=float)
    if arr.ndim != 2 or cents.ndim != 2:
        raise ValueError("data and centroids must be 2-D")
    d2 = (
        np.sum(arr**2, axis=1)[:, None]
        - 2.0 * arr @ cents.T
        + np.sum(cents**2, axis=1)[None, :]
    )
    return float(np.sum(np.maximum(d2, 0.0).min(axis=1)))


def centroid_distance(estimated, reference) -> float:
    """Total Euclidean distance between optimally matched centroid sets.

    The 'Distance' series of Fig. 4/5: centroids are matched one-to-one by
    the Hungarian algorithm (so label permutations do not matter) and the
    matched distances are summed.  Requires equal counts.
    """
    est = np.asarray(estimated, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if est.shape != ref.shape:
        raise ValueError("centroid sets must have identical shapes")
    cost = np.linalg.norm(est[:, None, :] - ref[None, :, :], axis=2)
    rows, cols = linear_sum_assignment(cost)
    return float(cost[rows, cols].sum())


def accuracy(y_true, y_pred) -> float:
    """Fraction of matching labels."""
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    if t.size != p.size or t.size == 0:
        raise ValueError("label vectors must be non-empty and equal-length")
    return float(np.mean(t == p))


def confusion_matrix(y_true, y_pred, n_classes=None) -> np.ndarray:
    """Counts matrix ``C[i, j]`` = actual class i predicted as class j."""
    t = np.asarray(y_true, dtype=int).ravel()
    p = np.asarray(y_pred, dtype=int).ravel()
    if t.size != p.size or t.size == 0:
        raise ValueError("label vectors must be non-empty and equal-length")
    k = int(n_classes) if n_classes else int(max(t.max(), p.max())) + 1
    matrix = np.zeros((k, k), dtype=int)
    np.add.at(matrix, (t, p), 1)
    return matrix


@dataclass(frozen=True)
class ConfusionSummary:
    """The Fig. 6a/7 panel: confusion matrix with PPV and FDR per class.

    ``ppv[j]`` (positive predictive value, the bottom green row of the
    MATLAB charts) is the fraction of predictions of class ``j`` that are
    correct; ``fdr[j] = 1 - ppv[j]`` is the false discovery rate.
    """

    matrix: np.ndarray
    ppv: np.ndarray
    fdr: np.ndarray
    accuracy: float


def confusion_summary(y_true, y_pred, n_classes=None) -> ConfusionSummary:
    """Build the confusion panel of Fig. 6a/7."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    predicted_totals = matrix.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        ppv = np.where(
            predicted_totals > 0, np.diag(matrix) / predicted_totals, np.nan
        )
    fdr = 1.0 - ppv
    acc = float(np.trace(matrix)) / float(matrix.sum())
    return ConfusionSummary(matrix=matrix, ppv=ppv, fdr=fdr, accuracy=acc)


def mse(estimates, truth) -> float:
    """Mean squared error of scalar estimates against a ground truth."""
    est = np.asarray(estimates, dtype=float).ravel()
    if est.size == 0:
        raise ValueError("estimates must be non-empty")
    return float(np.mean((est - float(truth)) ** 2))
