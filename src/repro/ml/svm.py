"""Linear SVM trained with Pegasos SGD (evaluation substrate, §VI-C).

A from-scratch linear support vector machine: binary hinge-loss + L2
training via the Pegasos projected-subgradient schedule, lifted to
multiclass by one-vs-rest voting on decision margins.  Features are
standardized internally (fit on the training data) so the regularization
behaves uniformly across datasets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["LinearSVM", "OneVsRestSVM"]


class LinearSVM:
    """Binary linear SVM: ``min λ/2 ||w||² + mean hinge(y (w·x + b))``.

    Labels must be ±1.  Pegasos: at step ``t`` the learning rate is
    ``1 / (λ t)``; the update uses a single random sample, followed by the
    optional ``1/sqrt(λ)``-ball projection that gives the classic
    convergence guarantee.
    """

    def __init__(
        self,
        lam: float = 1e-3,
        n_iter: int = 20_000,
        seed: Optional[int] = None,
        project: bool = True,
    ):
        if lam <= 0.0:
            raise ValueError("regularization lam must be positive")
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.lam = float(lam)
        self.n_iter = int(n_iter)
        self.seed = seed
        self.project = bool(project)
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    def fit(self, data, labels) -> "LinearSVM":
        """Train on ±1 labels."""
        x = np.asarray(data, dtype=float)
        y = np.asarray(labels, dtype=float).ravel()
        if x.ndim != 2 or x.shape[0] != y.size or x.shape[0] == 0:
            raise ValueError("data must be 2-D with one label per row")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("binary labels must be -1/+1")

        rng = np.random.default_rng(self.seed)
        n = x.shape[0]
        w = np.zeros(x.shape[1])
        b = 0.0
        radius = 1.0 / np.sqrt(self.lam)

        for t in range(1, self.n_iter + 1):
            i = rng.integers(n)
            eta = 1.0 / (self.lam * t)
            margin = y[i] * (x[i] @ w + b)
            w *= 1.0 - eta * self.lam
            if margin < 1.0:
                w += eta * y[i] * x[i]
                b += eta * y[i]
            if self.project:
                norm = np.linalg.norm(w)
                if norm > radius:
                    w *= radius / norm

        self.weights = w
        self.bias = float(b)
        return self

    def decision_function(self, data) -> np.ndarray:
        """Signed margins ``w·x + b``."""
        if self.weights is None:
            raise RuntimeError("model must be fit before scoring")
        x = np.asarray(data, dtype=float)
        return x @ self.weights + self.bias

    def predict(self, data) -> np.ndarray:
        """±1 predictions."""
        return np.where(self.decision_function(data) >= 0.0, 1.0, -1.0)


class OneVsRestSVM:
    """Multiclass linear SVM by one-vs-rest margin voting.

    One binary :class:`LinearSVM` per class; prediction takes the argmax
    of the per-class decision margins.  Inputs are standardized with the
    training mean/std, matching common practice for margin-based models.
    """

    def __init__(
        self,
        lam: float = 1e-3,
        n_iter: int = 20_000,
        seed: Optional[int] = None,
    ):
        self.lam = float(lam)
        self.n_iter = int(n_iter)
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self._models: list = []
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _standardize(self, x: np.ndarray) -> np.ndarray:
        return (x - self._mean) / self._std

    def fit(self, data, labels) -> "OneVsRestSVM":
        """Train one binary model per distinct label."""
        x = np.asarray(data, dtype=float)
        y = np.asarray(labels).ravel()
        if x.ndim != 2 or x.shape[0] != y.size or x.shape[0] == 0:
            raise ValueError("data must be 2-D with one label per row")
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0)
        self._std = np.where(self._std > 0.0, self._std, 1.0)
        xs = self._standardize(x)

        self._models = []
        for idx, cls in enumerate(self.classes_):
            binary = np.where(y == cls, 1.0, -1.0)
            model = LinearSVM(
                lam=self.lam,
                n_iter=self.n_iter,
                seed=None if self.seed is None else self.seed + idx,
            )
            model.fit(xs, binary)
            self._models.append(model)
        return self

    def decision_matrix(self, data) -> np.ndarray:
        """Margins per class, shape ``(n, n_classes)``."""
        if self.classes_ is None:
            raise RuntimeError("model must be fit before scoring")
        xs = self._standardize(np.asarray(data, dtype=float))
        return np.column_stack([m.decision_function(xs) for m in self._models])

    def predict(self, data) -> np.ndarray:
        """Class labels by margin argmax."""
        margins = self.decision_matrix(data)
        return self.classes_[np.argmax(margins, axis=1)]

    def score(self, data, labels) -> float:
        """Mean accuracy on the given data."""
        y = np.asarray(labels).ravel()
        return float(np.mean(self.predict(data) == y))
