"""From-scratch ML evaluation substrates: k-means, linear SVM, SOM, metrics."""

from .kmeans import KMeansResult, kmeans, kmeans_plus_plus_init
from .metrics import (
    ConfusionSummary,
    accuracy,
    centroid_distance,
    confusion_matrix,
    confusion_summary,
    mse,
    sse,
)
from .som import SelfOrganizingMap
from .svm import LinearSVM, OneVsRestSVM

__all__ = [
    "KMeansResult",
    "kmeans",
    "kmeans_plus_plus_init",
    "sse",
    "centroid_distance",
    "accuracy",
    "confusion_matrix",
    "confusion_summary",
    "ConfusionSummary",
    "mse",
    "SelfOrganizingMap",
    "LinearSVM",
    "OneVsRestSVM",
]
