"""Self-Organizing Map with U-matrix (evaluation substrate, §VI-C).

A rectangular-grid SOM (the paper uses 20 x 20 = 400 neurons) trained by
the classic online Kohonen rule with exponentially decaying learning rate
and Gaussian neighborhood.  The U-matrix — the average distance between a
neuron's weight vector and its grid neighbors', the quantity rendered as
"color depth between adjacent neurons" in Figs. 6b/8 — plus quantization
and topographic errors and a BMU-based cluster count give the quantitative
handles the SOM comparison benchmark reports.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["SelfOrganizingMap"]


class SelfOrganizingMap:
    """Kohonen SOM on a rectangular grid.

    Parameters
    ----------
    rows, cols:
        Grid shape (paper: 20 x 20).
    n_iter:
        Number of online updates (samples drawn with replacement).
    learning_rate:
        Initial learning rate, decayed exponentially to ~1% of itself.
    sigma:
        Initial neighborhood radius (defaults to half the larger grid
        dimension), decayed on the same schedule.
    seed:
        RNG seed for weight init and sample order.
    """

    def __init__(
        self,
        rows: int = 20,
        cols: int = 20,
        n_iter: int = 10_000,
        learning_rate: float = 0.5,
        sigma: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be >= 1")
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.n_iter = int(n_iter)
        self.learning_rate = float(learning_rate)
        self.sigma0 = float(sigma) if sigma is not None else max(rows, cols) / 2.0
        if self.sigma0 <= 0.0:
            raise ValueError("sigma must be positive")
        self.seed = seed
        self.weights: Optional[np.ndarray] = None  # (rows*cols, d)
        coords = np.indices((self.rows, self.cols)).reshape(2, -1).T
        self._coords = coords.astype(float)  # grid positions of neurons

    # ------------------------------------------------------------------ #
    @property
    def n_neurons(self) -> int:
        """Total number of neurons on the grid."""
        return self.rows * self.cols

    def _check_fitted(self) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("SOM must be fit before use")
        return self.weights

    def fit(self, data) -> "SelfOrganizingMap":
        """Train the map with the online Kohonen rule."""
        x = np.asarray(data, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValueError("data must be a non-empty 2-D array")
        rng = np.random.default_rng(self.seed)

        # Initialize weights from the data's bounding box.
        lo, hi = x.min(axis=0), x.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        weights = lo + rng.random((self.n_neurons, x.shape[1])) * span

        decay = self.n_iter / 4.6  # rate/sigma shrink to ~1% at the end
        for t in range(self.n_iter):
            sample = x[rng.integers(x.shape[0])]
            factor = np.exp(-t / decay)
            lr = self.learning_rate * factor
            sigma = max(self.sigma0 * factor, 0.5)

            bmu = int(np.argmin(np.sum((weights - sample) ** 2, axis=1)))
            grid_d2 = np.sum((self._coords - self._coords[bmu]) ** 2, axis=1)
            influence = np.exp(-grid_d2 / (2.0 * sigma * sigma))
            weights += lr * influence[:, None] * (sample - weights)

        self.weights = weights
        return self

    # ------------------------------------------------------------------ #
    def best_matching_units(self, data) -> np.ndarray:
        """Flat BMU index per sample."""
        weights = self._check_fitted()
        x = np.asarray(data, dtype=float)
        d2 = (
            np.sum(x**2, axis=1)[:, None]
            - 2.0 * x @ weights.T
            + np.sum(weights**2, axis=1)[None, :]
        )
        return np.argmin(d2, axis=1)

    def u_matrix(self) -> np.ndarray:
        """Average distance from each neuron's weights to grid neighbors'.

        The inter-neuron "color depth" of Figs. 6b/8: large values mark
        cluster boundaries, small values cluster interiors.
        Shape ``(rows, cols)``.
        """
        weights = self._check_fitted().reshape(self.rows, self.cols, -1)
        out = np.zeros((self.rows, self.cols))
        counts = np.zeros((self.rows, self.cols))
        for dr, dc in ((0, 1), (1, 0)):
            a = weights[: self.rows - dr, : self.cols - dc]
            b = weights[dr:, dc:]
            dist = np.linalg.norm(a - b, axis=2)
            out[: self.rows - dr, : self.cols - dc] += dist
            out[dr:, dc:] += dist
            counts[: self.rows - dr, : self.cols - dc] += 1
            counts[dr:, dc:] += 1
        return out / counts

    def quantization_error(self, data) -> float:
        """Mean distance of samples to their BMU weights."""
        weights = self._check_fitted()
        x = np.asarray(data, dtype=float)
        bmus = self.best_matching_units(x)
        return float(np.mean(np.linalg.norm(x - weights[bmus], axis=1)))

    def topographic_error(self, data) -> float:
        """Fraction of samples whose two best units are not grid-adjacent."""
        weights = self._check_fitted()
        x = np.asarray(data, dtype=float)
        d2 = (
            np.sum(x**2, axis=1)[:, None]
            - 2.0 * x @ weights.T
            + np.sum(weights**2, axis=1)[None, :]
        )
        order = np.argsort(d2, axis=1)[:, :2]
        first = self._coords[order[:, 0]]
        second = self._coords[order[:, 1]]
        grid_dist = np.abs(first - second).sum(axis=1)
        return float(np.mean(grid_dist > 1.0))

    def cluster_count(self, data, labels=None) -> int:
        """Number of distinct data groups visible on the trained map.

        Counts connected components of *occupied* neurons (BMUs of at
        least one sample), merging grid-adjacent occupied neurons whose
        weight distance is below the U-matrix median — a simple watershed
        that approximates "how many classes does the map display"
        (Fig. 8's qualitative comparison).  ``labels`` is accepted for
        API symmetry but unused.
        """
        self._check_fitted()
        x = np.asarray(data, dtype=float)
        occupied = np.zeros(self.n_neurons, dtype=bool)
        occupied[np.unique(self.best_matching_units(x))] = True

        u = self.u_matrix().ravel()
        threshold = float(np.median(u))

        # Union-find over occupied, similar, grid-adjacent neurons.
        parent = np.arange(self.n_neurons)

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri

        for r in range(self.rows):
            for c in range(self.cols):
                i = r * self.cols + c
                if not occupied[i]:
                    continue
                for dr, dc in ((0, 1), (1, 0)):
                    rr, cc = r + dr, c + dc
                    if rr >= self.rows or cc >= self.cols:
                        continue
                    j = rr * self.cols + cc
                    if not occupied[j]:
                        continue
                    gap = float(
                        np.linalg.norm(self.weights[i] - self.weights[j])
                    )
                    if gap <= threshold:
                        union(i, j)

        roots = {find(i) for i in range(self.n_neurons) if occupied[i]}
        return len(roots)
