"""k-means clustering with k-means++ seeding (evaluation substrate, §VI-B).

A from-scratch Lloyd's-algorithm implementation: k-means++ initialization,
vectorized assignment/update steps, empty-cluster repair (re-seeding an
empty cluster at the point farthest from its centroid), and the SSE
objective the paper's Fig. 4/5 report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["KMeansResult", "kmeans_plus_plus_init", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Fitted k-means model."""

    centroids: np.ndarray
    labels: np.ndarray
    sse: float
    n_iter: int

    @property
    def n_clusters(self) -> int:
        """Number of centroids."""
        return self.centroids.shape[0]


def _pairwise_sq_dists(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape (n_points, n_centers)."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, clipped for rounding noise.
    d2 = (
        np.sum(data**2, axis=1)[:, None]
        - 2.0 * data @ centers.T
        + np.sum(centers**2, axis=1)[None, :]
    )
    return np.maximum(d2, 0.0)


def kmeans_plus_plus_init(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: D²-weighted sequential center selection."""
    n = data.shape[0]
    centers = np.empty((n_clusters, data.shape[1]))
    centers[0] = data[rng.integers(n)]
    closest = _pairwise_sq_dists(data, centers[:1]).ravel()
    for i in range(1, n_clusters):
        total = closest.sum()
        if total <= 0.0:
            # All points coincide with chosen centers; fall back to uniform.
            centers[i] = data[rng.integers(n)]
            continue
        probs = closest / total
        centers[i] = data[rng.choice(n, p=probs)]
        closest = np.minimum(
            closest, _pairwise_sq_dists(data, centers[i : i + 1]).ravel()
        )
    return centers


def kmeans(
    data,
    n_clusters: int,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: Optional[int] = None,
    init: Optional[np.ndarray] = None,
    n_init: int = 1,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding.

    Parameters mirror the common convention; ``init`` may supply explicit
    starting centroids (used by tests and by experiments that want
    deterministic comparisons), and ``n_init`` restarts the algorithm
    from fresh k-means++ seeds keeping the lowest-SSE fit (ignored when
    ``init`` is given).  Returns a :class:`KMeansResult` whose ``sse`` is
    the within-cluster sum of squared errors
    ``Σ ||x_i - c_{label(i)}||²`` — the SSE of Fig. 4/5.
    """
    if n_init < 1:
        raise ValueError("n_init must be >= 1")
    if init is None and n_init > 1:
        base = 0 if seed is None else seed
        best: Optional[KMeansResult] = None
        for restart in range(n_init):
            candidate = kmeans(
                data, n_clusters, max_iter, tol, seed=base + restart, n_init=1
            )
            if best is None or candidate.sse < best.sse:
                best = candidate
        return best
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise ValueError("data must be a non-empty 2-D array")
    if n_clusters < 1 or n_clusters > arr.shape[0]:
        raise ValueError("need 1 <= n_clusters <= n_points")
    rng = np.random.default_rng(seed)

    if init is not None:
        centers = np.array(init, dtype=float, copy=True)
        if centers.shape != (n_clusters, arr.shape[1]):
            raise ValueError("init has the wrong shape")
    else:
        centers = kmeans_plus_plus_init(arr, n_clusters, rng)

    labels = np.zeros(arr.shape[0], dtype=int)
    for iteration in range(1, max_iter + 1):
        d2 = _pairwise_sq_dists(arr, centers)
        labels = np.argmin(d2, axis=1)

        new_centers = centers.copy()
        for c in range(n_clusters):
            members = arr[labels == c]
            if members.shape[0] == 0:
                # Empty-cluster repair: grab the globally farthest point.
                farthest = int(np.argmax(np.min(d2, axis=1)))
                new_centers[c] = arr[farthest]
            else:
                new_centers[c] = members.mean(axis=0)

        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if shift < tol:
            break

    d2 = _pairwise_sq_dists(arr, centers)
    labels = np.argmin(d2, axis=1)
    sse = float(np.sum(d2[np.arange(arr.shape[0]), labels]))
    return KMeansResult(centroids=centers, labels=labels, sse=sse, n_iter=iteration)
