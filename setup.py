"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables the
legacy ``pip install -e . --no-use-pep517`` editable path used in offline
environments where PEP 517 build isolation cannot fetch build deps.
"""

from setuptools import setup

setup()
