"""Fig. 6 — ground truth of the SVM and SOM classification.

(a) the clean-data SVM confusion panel on Control, with per-class PPV
    and FDR (the green/red bottom rows of the MATLAB chart);
(b) the clean-data SOM of the Creditcard stand-in: U-matrix statistics
    and the skewed class structure (bulk + two isolated users + five
    prospects).
"""

import numpy as np

from repro.datasets import generate_control, generate_creditcard
from repro.experiments import format_table
from repro.ml import OneVsRestSVM, SelfOrganizingMap, confusion_summary

from conftest import once


def _svm_ground_truth():
    data, labels = generate_control(seed=7)
    model = OneVsRestSVM(lam=1e-4, n_iter=20_000, seed=0).fit(data, labels)
    return confusion_summary(labels, model.predict(data), 6)


def test_fig6a_svm_ground_truth(benchmark, report):
    summary = once(benchmark, _svm_ground_truth)

    rows = []
    for cls in range(6):
        rows.append(
            (
                cls,
                *summary.matrix[cls].tolist(),
                100 * summary.ppv[cls],
                100 * summary.fdr[cls],
            )
        )
    text = format_table(
        ["class", "p0", "p1", "p2", "p3", "p4", "p5", "PPV %", "FDR %"],
        rows,
        title=(
            "Fig. 6a: SVM ground truth on Control — "
            f"accuracy {100 * summary.accuracy:.1f}% (paper: 96.8%)"
        ),
    )
    report("fig6a_svm_groundtruth", text)

    assert summary.accuracy > 0.93


def _som_ground_truth():
    data, labels = generate_creditcard(n_samples=2000, seed=23)
    som = SelfOrganizingMap(rows=10, cols=10, n_iter=4000, seed=0).fit(data)
    return som, data, labels


def test_fig6b_som_ground_truth(benchmark, report):
    som, data, labels = once(benchmark, _som_ground_truth)
    u = som.u_matrix()
    bulk_qe = som.quantization_error(data[labels == 0])
    minority_qe = som.quantization_error(data[labels > 0])

    rows = [
        ("neurons", som.n_neurons),
        ("u-matrix median", float(np.median(u))),
        ("u-matrix max (class border)", float(u.max())),
        ("quantization error (bulk)", bulk_qe),
        ("quantization error (7 minority)", minority_qe),
        ("minority isolation ratio", minority_qe / bulk_qe),
        ("topographic error", som.topographic_error(data)),
    ]
    text = format_table(
        ["quantity", "value"],
        rows,
        title="Fig. 6b: SOM ground truth on Creditcard (skewed 4-class structure)",
    )
    report("fig6b_som_groundtruth", text)

    # The minority points are the 'isolated points' of the paper's map:
    # the bulk-dominated neuron grid sits far from them, so their
    # quantization distance is distinctly larger than the bulk's.
    assert minority_qe > 1.3 * bulk_qe
