"""Fig. 1 / Fig. 2 — the payoff trade-off and the strategy space.

Regenerates the curves behind the definitional figures: the poison
payoff P(x) and trimming overhead T(x) across the percentile domain, the
balance point x_L where they cross (Fig. 1a / Fig. 2), the right
boundary x_R, and the mixed-strategy reduction of an arbitrary poison
distribution onto the [x_L, x_R] endpoints (Fig. 1b).
"""

import numpy as np

from repro.core.mixed import reduce_distribution
from repro.core.payoffs import PayoffModel
from repro.experiments import format_table

from conftest import once


def _run():
    model = PayoffModel()
    x_l, x_r = model.strategy_interval()
    grid = np.linspace(0.0, 1.0, 11)
    curve = [
        (x, model.poison_payoff(x), model.trim_overhead(x)) for x in grid
    ]
    rng = np.random.default_rng(0)
    samples = rng.beta(5, 2, size=400) * (x_r - x_l) + x_l
    mixture = reduce_distribution(samples, x_l, x_r)
    return model, x_l, x_r, curve, samples, mixture


def test_fig1_payoff_tradeoff(benchmark, report):
    model, x_l, x_r, curve, samples, mixture = once(benchmark, _run)

    text = format_table(
        ["x (percentile)", "P(x) poison payoff", "T(x) trim overhead"],
        curve,
        title=(
            "Fig. 1a / Fig. 2: the payoff trade-off — "
            f"x_L = {x_l:.4f}, x_R = {x_r:.4f}\n"
            f"Fig. 1b: arbitrary distribution (mean {np.mean(samples):.4f}) "
            f"reduces to the mixed strategy p_L = {mixture.p_left:.4f} "
            f"on x_L, p_R = {mixture.p_right:.4f} on x_R "
            f"(mean {mixture.mean:.4f})"
        ),
    )
    report("fig1_payoff_curves", text)

    # The crossing defines the balance point.
    assert abs(model.poison_payoff(x_l) - model.trim_overhead(x_l)) < 1e-9
    # The reduction preserves the distribution's mean exactly.
    assert abs(mixture.mean - float(np.mean(samples))) < 1e-9
    # P increases and T decreases across the domain.
    p_values = [row[1] for row in curve]
    t_values = [row[2] for row in curve]
    assert all(b >= a for a, b in zip(p_values, p_values[1:], strict=False))
    assert all(b <= a for a, b in zip(t_values, t_values[1:], strict=False))
