"""Engine hot-loop micro-benchmark: vectorized vs naive reference paths.

Times the three per-solve / per-round hot paths that were made
array-native — the broadcast ``PayoffModel.payoff_matrix``, the
vectorized ``solve_stackelberg`` column selection, and the engine round
loop (O(1) quantile-table cutoffs + single-pass quality evaluation) —
against naive reference implementations that reproduce the pre-
optimization behavior exactly:

* ``payoff_matrix``: a scalar ``profile_payoffs`` double loop
  (grid² Python calls);
* ``solve_stackelberg``: the per-column best-response loop on top of the
  naive matrix;
* engine: a trimmer whose reference cutoff re-runs ``np.quantile`` over
  the full reference every round, plus a quality evaluator that scores
  the combined batch twice per round (the old ``normalized()`` +
  ``score()`` pair) and never reuses the trimmer's scores.

Correctness gates: the fast and naive paths must agree *byte for byte*
(payoff matrices, Stackelberg solutions, and ``GameResult.to_records()``
of a full game), the lean board must not change records, and a
``workers=1`` vs ``workers=2`` sweep must stay byte-identical.
Performance gates: >= 5x on ``payoff_matrix`` and ``solve_stackelberg``
at grid 201.  Results are persisted to
``benchmarks/results/BENCH_engine.json``.

Run standalone with ``python benchmarks/bench_engine_hotloop.py``.
"""

import json
import os
import time

import numpy as np

from repro.core.domain import percentile_grid
from repro.core.engine import BandExcessJudge, CollectionGame
from repro.core.payoffs import PayoffModel
from repro.core.quality import TailMassEvaluator
from repro.core.stackelberg import solve_stackelberg
from repro.core.strategies import ElasticAdversary, ElasticCollector
from repro.core.trimming import ValueTrimmer
from repro.runtime import SweepRunner
from repro.streams import ArrayStream, PoisonInjector

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_engine.json")

GRID_SIZE = 201
ENGINE_ROUNDS = 40
REFERENCE_SIZE = 20_000
BATCH_SIZE = 2_000
TIMING_REPEATS = 3


# --------------------------------------------------------------------- #
# naive reference implementations
# --------------------------------------------------------------------- #
def naive_payoff_matrix(model, adversary_grid, collector_grid):
    """The scalar double loop the broadcast kernel replaced."""
    a_grid = np.asarray(adversary_grid, dtype=float)
    c_grid = np.asarray(collector_grid, dtype=float)
    adv = np.empty((a_grid.size, c_grid.size))
    col = np.empty_like(adv)
    for i, x_a in enumerate(a_grid):
        for j, x_c in enumerate(c_grid):
            adv[i, j], col[i, j] = model.profile_payoffs(x_a, x_c)
    return adv, col


def naive_solve_stackelberg(model, grid_size, tie_break="pessimistic"):
    """The per-column best-response loop on the naive matrix."""
    x_l, x_r = model.strategy_interval()
    grid = percentile_grid(x_l, x_r, grid_size)
    adv_payoffs, col_payoffs = naive_payoff_matrix(model, grid, grid)
    best_leader_payoff = -np.inf
    best = None
    for j, x_c in enumerate(grid):
        column = adv_payoffs[:, j]
        follower_set = np.flatnonzero(np.isclose(column, column.max()))
        leader_outcomes = col_payoffs[follower_set, j]
        if tie_break == "pessimistic":
            idx = follower_set[int(np.argmin(leader_outcomes))]
        else:
            idx = follower_set[int(np.argmax(leader_outcomes))]
        leader_payoff = col_payoffs[idx, j]
        if leader_payoff > best_leader_payoff:
            best_leader_payoff = leader_payoff
            best = (
                float(x_c),
                float(grid[idx]),
                float(leader_payoff),
                float(adv_payoffs[idx, j]),
            )
    return best


class NaiveCutoffTrimmer(ValueTrimmer):
    """Pre-table reference anchoring: np.quantile every round."""

    def _cutoff(self, batch_scores, q):
        if self.is_reference_anchored:
            source = self._reference_scores
        else:
            source = batch_scores
        return float(np.quantile(source, q))


class TwoPassTailMass(TailMassEvaluator):
    """The pre-optimization evaluation: two scoring sweeps per round,
    no reuse of the trimmer's batch scores."""

    def accepts_scores(self, score_kind):
        return False

    def evaluate(self, batch, scores=None):
        return float(self.score(batch)), self.normalized(batch)


# --------------------------------------------------------------------- #
# harness
# --------------------------------------------------------------------- #
def _best_of(fn, repeats=TIMING_REPEATS):
    """Best wall-clock of ``repeats`` runs; returns (seconds, result)."""
    best_s, result = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, result


def _engine_data():
    rng = np.random.default_rng(42)
    return rng.lognormal(mean=0.0, sigma=1.0, size=REFERENCE_SIZE)


def _build_game(data, trimmer, evaluator):
    return CollectionGame(
        source=ArrayStream(data, batch_size=BATCH_SIZE, seed=0),
        collector=ElasticCollector(t_th=0.9, k=0.5),
        adversary=ElasticAdversary(t_th=0.9, k=0.5),
        injector=PoisonInjector(attack_ratio=0.2, mode="quantile", seed=1),
        trimmer=trimmer,
        reference=data,
        quality_evaluator=evaluator,
        judge=BandExcessJudge(noise_sigma=0.02, seed=3),
        rounds=ENGINE_ROUNDS,
    )


def _records_bytes(result):
    return json.dumps(result.to_records(), sort_keys=True).encode()


def _sweep_grid():
    from repro.core.strategies import FixedAdversary, TitForTatCollector
    from repro.runtime import ComponentSpec, StrategyPair, SweepGrid

    pair = StrategyPair(
        name="tft-vs-extreme",
        collector=ComponentSpec(TitForTatCollector, {"t_th": 0.9, "trigger": None}),
        adversary=ComponentSpec(FixedAdversary, {"percentile": 0.99}),
    )
    return SweepGrid(
        pairs=(pair,),
        attack_ratios=(0.1, 0.3),
        repetitions=2,
        rounds=4,
        batch_size=60,
        store_retained=False,
        seed=0,
    )


def run_engine_benchmark() -> dict:
    """Time fast vs naive paths and check byte-equality; return payload."""
    model = PayoffModel()
    x_l, x_r = model.strategy_interval()
    grid = percentile_grid(x_l, x_r, GRID_SIZE)

    # --- payoff matrix -------------------------------------------------
    naive_matrix_s, naive_matrices = _best_of(
        lambda: naive_payoff_matrix(model, grid, grid)
    )
    fast_matrix_s, fast_matrices = _best_of(
        lambda: model.payoff_matrix(grid, grid)
    )
    matrices_identical = (
        naive_matrices[0].tobytes() == fast_matrices[0].tobytes()
        and naive_matrices[1].tobytes() == fast_matrices[1].tobytes()
    )

    # --- Stackelberg solve --------------------------------------------
    naive_solve_s, naive_solution = _best_of(
        lambda: naive_solve_stackelberg(model, GRID_SIZE)
    )
    fast_solve_s, fast_solution = _best_of(
        lambda: solve_stackelberg(model, grid_size=GRID_SIZE)
    )
    solutions_identical = naive_solution == (
        fast_solution.leader_action,
        fast_solution.follower_action,
        fast_solution.leader_payoff,
        fast_solution.follower_payoff,
    )

    # --- engine round loop --------------------------------------------
    data = _engine_data()
    naive_engine_s, naive_result = _best_of(
        lambda: _build_game(data, NaiveCutoffTrimmer(), TwoPassTailMass()).run()
    )
    fast_engine_s, fast_result = _best_of(
        lambda: _build_game(data, ValueTrimmer(), TailMassEvaluator()).run()
    )
    records_identical = _records_bytes(naive_result) == _records_bytes(fast_result)

    lean_result = CollectionGame(
        source=ArrayStream(data, batch_size=BATCH_SIZE, seed=0),
        collector=ElasticCollector(t_th=0.9, k=0.5),
        adversary=ElasticAdversary(t_th=0.9, k=0.5),
        injector=PoisonInjector(attack_ratio=0.2, mode="quantile", seed=1),
        trimmer=ValueTrimmer(),
        reference=data,
        quality_evaluator=TailMassEvaluator(),
        judge=BandExcessJudge(noise_sigma=0.02, seed=3),
        rounds=ENGINE_ROUNDS,
        store_retained=False,
    ).run()
    lean_identical = _records_bytes(lean_result) == _records_bytes(fast_result)

    # --- sweep determinism across worker counts -----------------------
    serial_records = SweepRunner(workers=1).run_grid(_sweep_grid())
    parallel_records = SweepRunner(workers=2).run_grid(_sweep_grid())
    sweep_identical = serial_records == parallel_records

    return {
        "grid_size": GRID_SIZE,
        "payoff_matrix": {
            "naive_seconds": naive_matrix_s,
            "fast_seconds": fast_matrix_s,
            "speedup": naive_matrix_s / fast_matrix_s,
            "byte_identical": matrices_identical,
        },
        "solve_stackelberg": {
            "naive_seconds": naive_solve_s,
            "fast_seconds": fast_solve_s,
            "speedup": naive_solve_s / fast_solve_s,
            "solutions_identical": solutions_identical,
        },
        "engine": {
            "rounds": ENGINE_ROUNDS,
            "reference_size": REFERENCE_SIZE,
            "batch_size": BATCH_SIZE,
            "naive_rounds_per_second": ENGINE_ROUNDS / naive_engine_s,
            "fast_rounds_per_second": ENGINE_ROUNDS / fast_engine_s,
            "speedup": naive_engine_s / fast_engine_s,
            "records_byte_identical": records_identical,
            "lean_records_byte_identical": lean_identical,
        },
        "sweep": {
            "workers_compared": [1, 2],
            "byte_identical": sweep_identical,
        },
    }


def _persist(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_engine_hotloop(report):
    payload = run_engine_benchmark()
    _persist(payload)
    report(
        "engine_hotloop",
        "Engine hot loop (vectorized vs naive reference)\n"
        f"payoff_matrix @ {GRID_SIZE}: "
        f"{payload['payoff_matrix']['naive_seconds'] * 1e3:.1f}ms -> "
        f"{payload['payoff_matrix']['fast_seconds'] * 1e3:.2f}ms "
        f"({payload['payoff_matrix']['speedup']:.0f}x)\n"
        f"solve_stackelberg @ {GRID_SIZE}: "
        f"{payload['solve_stackelberg']['naive_seconds'] * 1e3:.1f}ms -> "
        f"{payload['solve_stackelberg']['fast_seconds'] * 1e3:.2f}ms "
        f"({payload['solve_stackelberg']['speedup']:.0f}x)\n"
        f"engine: {payload['engine']['naive_rounds_per_second']:.0f} -> "
        f"{payload['engine']['fast_rounds_per_second']:.0f} rounds/s "
        f"({payload['engine']['speedup']:.2f}x)",
    )

    # Correctness gates: the fast paths must not change a single bit.
    assert payload["payoff_matrix"]["byte_identical"]
    assert payload["solve_stackelberg"]["solutions_identical"]
    assert payload["engine"]["records_byte_identical"]
    assert payload["engine"]["lean_records_byte_identical"]
    assert payload["sweep"]["byte_identical"]
    # Performance gates.
    assert payload["payoff_matrix"]["speedup"] >= 5.0
    assert payload["solve_stackelberg"]["speedup"] >= 5.0
    assert payload["engine"]["speedup"] >= 1.05


if __name__ == "__main__":
    result = run_engine_benchmark()
    _persist(result)
    print(json.dumps(result, indent=2))
    print(f"written to {BENCH_PATH}")
