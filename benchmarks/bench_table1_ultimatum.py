"""Table I — the ultimatum-game payoff matrix and its unique equilibrium.

Regenerates the payoff matrix of §III-D (adversary rows Soft/Hard,
collector columns Soft/Hard) and verifies the prisoner's-dilemma
structure: a unique (Hard, Hard) equilibrium despite (Soft, Soft) being
mutually preferable — the motivation for the infinite repeated game.
"""

from repro.core.game import HARD, UltimatumPayoffs, build_ultimatum_game
from repro.experiments import format_table

from conftest import once


def _run():
    payoffs = UltimatumPayoffs()
    game = build_ultimatum_game(payoffs)
    equilibria = game.pure_nash_equilibria()
    return game, equilibria


def test_table1_ultimatum_game(benchmark, report):
    game, equilibria = once(benchmark, _run)

    rows = []
    for i, row_label in enumerate(game.row_labels):
        for j, col_label in enumerate(game.col_labels):
            rows.append(
                (
                    row_label,
                    col_label,
                    game.row_payoffs[i, j],
                    game.col_payoffs[i, j],
                    "yes" if (i, j) in equilibria else "",
                )
            )
    text = format_table(
        ["adversary", "collector", "adversary payoff", "collector payoff", "Nash"],
        rows,
        title="Table I: ultimatum game payoff matrix (p_high>t_high>>p_low>t_low>0)",
    )
    report("table1_ultimatum", text)

    assert equilibria == [(HARD, HARD)]
