"""Sweep-runner micro-benchmark: serial vs parallel tournament grid.

Times the default meta-game tournament grid (4 collectors x 4
adversaries x 2 repetitions of 10-round games) through the
:mod:`repro.runtime` sweep runner, once serially (``workers=1``) and
once on a 4-process pool (``workers=4``), asserts the two payoff
matrices are byte-identical, and persists the wall-clock trajectory to
``benchmarks/results/BENCH_sweep.json`` so later performance PRs have a
baseline to beat.

The parallel speedup is hardware-bound: the assertion only requires
>= 2x when at least 4 CPUs are actually available (on a single-core
container the pool can't beat the serial loop — determinism is still
asserted).  Run standalone with ``python benchmarks/bench_sweep_runner.py``.
"""

import dataclasses
import json
import os
import time

from repro.experiments import TournamentConfig, run_tournament

from conftest import available_cpus

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_sweep.json")

#: The default tournament grid (32 games of 10 rounds each).
BASE = TournamentConfig()
PARALLEL_WORKERS = 4


def run_sweep_benchmark() -> dict:
    """Time the grid serially and in parallel; return the measurements."""
    t0 = time.perf_counter()
    serial = run_tournament(BASE)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_tournament(
        dataclasses.replace(BASE, workers=PARALLEL_WORKERS)
    )
    parallel_s = time.perf_counter() - t0

    identical = bool(
        serial.adversary_payoffs.tobytes() == parallel.adversary_payoffs.tobytes()
        and serial.collector_payoffs.tobytes()
        == parallel.collector_payoffs.tobytes()
    )
    n_games = (
        len(serial.collector_names)
        * len(serial.adversary_names)
        * BASE.repetitions
    )
    return {
        "grid": {
            "collectors": list(serial.collector_names),
            "adversaries": list(serial.adversary_names),
            "repetitions": BASE.repetitions,
            "rounds": BASE.rounds,
            "n_games": n_games,
        },
        "workers": PARALLEL_WORKERS,
        "available_cpus": available_cpus(),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "serial_games_per_second": n_games / serial_s,
        "matrices_byte_identical": identical,
    }


def _persist(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_sweep_runner_parallelism(report):
    payload = run_sweep_benchmark()
    _persist(payload)
    report(
        "sweep_runner",
        "Sweep runner: default tournament grid "
        f"({payload['grid']['n_games']} games)\n"
        f"serial {payload['serial_seconds']:.3f}s | "
        f"{PARALLEL_WORKERS} workers {payload['parallel_seconds']:.3f}s | "
        f"speedup {payload['speedup']:.2f}x on "
        f"{payload['available_cpus']} CPU(s)",
    )

    # Correctness gate: parallel execution must not change a single bit.
    assert payload["matrices_byte_identical"]
    # Performance gate: only meaningful when the hardware can parallelize.
    if payload["available_cpus"] >= PARALLEL_WORKERS:
        assert payload["speedup"] >= 2.0


if __name__ == "__main__":
    result = run_sweep_benchmark()
    _persist(result)
    print(json.dumps(result, indent=2))
    print(f"written to {BENCH_PATH}")
