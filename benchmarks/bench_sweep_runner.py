"""Sweep-runner micro-benchmark: the (workers × rep-batch) plane.

Times the default meta-game tournament grid (4 collectors x 4
adversaries x 2 repetitions of 10-round games) through the
:mod:`repro.runtime` sweep runner at the four corners of the execution
plane — serial solo loop, 4-process pool, serial rep-batched
(``rep_batch="auto"``), and the combined process × rep-batch run —
asserts all four payoff matrices are byte-identical, and persists the
wall-clock trajectory to ``benchmarks/results/BENCH_sweep.json`` so
later performance PRs have a baseline to beat.

The parallel speedup is hardware-bound: the assertion only requires
>= 2x when at least 4 CPUs are actually available (on a single-core
container the pool can't beat the serial loop — determinism is still
asserted; rep batching is the single-core lever, measured separately by
``bench_batched_engine.py``).  Run standalone with
``python benchmarks/bench_sweep_runner.py``.
"""

import dataclasses
import json
import os
import time

from repro.experiments import TournamentConfig, run_tournament

from conftest import available_cpus

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_sweep.json")

#: The default tournament grid (32 games of 10 rounds each).
BASE = TournamentConfig()
PARALLEL_WORKERS = 4


def _timed(config) -> tuple:
    t0 = time.perf_counter()
    result = run_tournament(config)
    return time.perf_counter() - t0, result


def _matrices_identical(a, b) -> bool:
    return bool(
        a.adversary_payoffs.tobytes() == b.adversary_payoffs.tobytes()
        and a.collector_payoffs.tobytes() == b.collector_payoffs.tobytes()
    )


def run_sweep_benchmark() -> dict:
    """Time the grid over the (workers × rep-batch) plane; return payload.

    Four corners: serial solo loop, process-parallel solo loop, serial
    rep-batched, and the combined (process × rep-batch) execution — the
    full composition of the three perf layers.  All four payoff matrices
    must be byte-identical.
    """
    serial_s, serial = _timed(dataclasses.replace(BASE, rep_batch=None))
    parallel_s, parallel = _timed(
        dataclasses.replace(BASE, workers=PARALLEL_WORKERS, rep_batch=None)
    )
    batched_s, batched = _timed(dataclasses.replace(BASE, rep_batch="auto"))
    combined_s, combined = _timed(
        dataclasses.replace(BASE, workers=PARALLEL_WORKERS, rep_batch="auto")
    )

    identical = (
        _matrices_identical(serial, parallel)
        and _matrices_identical(serial, batched)
        and _matrices_identical(serial, combined)
    )
    n_games = (
        len(serial.collector_names)
        * len(serial.adversary_names)
        * BASE.repetitions
    )
    return {
        "grid": {
            "collectors": list(serial.collector_names),
            "adversaries": list(serial.adversary_names),
            "repetitions": BASE.repetitions,
            "rounds": BASE.rounds,
            "n_games": n_games,
        },
        "workers": PARALLEL_WORKERS,
        "available_cpus": available_cpus(),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "rep_batched_seconds": batched_s,
        "combined_seconds": combined_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "rep_batch_speedup": (
            serial_s / batched_s if batched_s > 0 else float("inf")
        ),
        "combined_speedup": (
            serial_s / combined_s if combined_s > 0 else float("inf")
        ),
        "serial_games_per_second": n_games / serial_s,
        "matrices_byte_identical": identical,
    }


def _persist(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_sweep_runner_parallelism(report):
    payload = run_sweep_benchmark()
    _persist(payload)
    report(
        "sweep_runner",
        "Sweep runner: default tournament grid "
        f"({payload['grid']['n_games']} games)\n"
        f"serial {payload['serial_seconds']:.3f}s | "
        f"{PARALLEL_WORKERS} workers {payload['parallel_seconds']:.3f}s | "
        f"speedup {payload['speedup']:.2f}x on "
        f"{payload['available_cpus']} CPU(s)\n"
        f"rep-batched {payload['rep_batched_seconds']:.3f}s "
        f"({payload['rep_batch_speedup']:.2f}x) | combined "
        f"{payload['combined_seconds']:.3f}s "
        f"({payload['combined_speedup']:.2f}x)",
    )

    # Correctness gate: parallel execution must not change a single bit.
    assert payload["matrices_byte_identical"]
    # Performance gate: only meaningful when the hardware can parallelize.
    if payload["available_cpus"] >= PARALLEL_WORKERS:
        assert payload["speedup"] >= 2.0


if __name__ == "__main__":
    result = run_sweep_benchmark()
    _persist(result)
    print(json.dumps(result, indent=2))
    print(f"written to {BENCH_PATH}")
