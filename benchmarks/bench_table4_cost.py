"""Table IV — roundwise cost of Elastic 0.1 and Elastic 0.5.

Regenerates the cost table: the mean distance-from-equilibrium of the
coupled Elastic dynamics over Round_no rounds.  Paper shape: roundwise
cost decays like C(k)/Round_no and the stronger response (k = 0.5)
converges faster, hence cheaper per round, than k = 0.1.
"""

from repro.experiments import CostConfig, format_table, run_cost_analysis

from conftest import once


def test_table4_elastic_cost(benchmark, report):
    rows = once(benchmark, run_cost_analysis, CostConfig())

    text = format_table(
        ["Round_no", "k=0.5 (%)", "k=0.1 (%)"],
        [(r.round_no, 100 * r.cost_k_high, 100 * r.cost_k_low) for r in rows],
        title="Table IV: roundwise cost of the Elastic scheme "
        "(distance from interactive equilibrium, percent)",
    )
    report("table4_cost", text)

    # Paper shapes: decreasing in Round_no; k = 0.5 cheaper than k = 0.1.
    costs_high = [r.cost_k_high for r in rows]
    costs_low = [r.cost_k_low for r in rows]
    assert all(a > b for a, b in zip(costs_high, costs_high[1:], strict=False))
    assert all(a > b for a, b in zip(costs_low, costs_low[1:], strict=False))
    assert all(r.cost_k_high < r.cost_k_low for r in rows)
