"""Fig. 7 — SVM classification comparison on Control.

T_th = 0.95, attack ratio 0.4 (§VI-C).  Regenerates the per-scheme
accuracies plus per-class PPV/FDR.  Paper shapes asserted: ground truth
is best, Baseline static (the ideal sub-threshold attack) is the worst,
and the untriggered Tit-for-tat — whose reference-anchored soft trim
removes the 99th-percentile poison entirely — lands nearest the ground
truth among the defenses.
"""

from repro.experiments import SVMConfig, format_table, run_svm_experiment

from conftest import once


def test_fig7_svm_comparison(benchmark, report):
    results = once(benchmark, run_svm_experiment, SVMConfig())

    rows = [
        (
            r.scheme,
            100 * r.accuracy,
            " ".join(f"{100 * v:.1f}" for v in r.summary.ppv),
        )
        for r in results
    ]
    text = format_table(
        ["scheme", "accuracy %", "per-class PPV %"],
        rows,
        title="Fig. 7: SVM comparison on Control (T_th=0.95, attack ratio 0.4)\n"
        "paper accuracies: GT 96.8, Ostrich 95.5, B0.9 95.1, Bstatic 94.9, "
        "TFT 96.1, E0.1 95.6, E0.5 95.7",
    )
    report("fig7_svm", text)

    acc = {r.scheme: r.accuracy for r in results}
    assert acc["groundtruth"] == max(acc.values())
    assert acc["baseline_static"] == min(acc.values())
    defenses = {k: v for k, v in acc.items() if k != "groundtruth"}
    assert max(defenses, key=defenses.get) == "titfortat"
