"""Result-store benchmark: cold run vs warm-cache replay.

Plays a representative scenario slice — the Table III non-equilibrium
sweep (game cells through the default reducer) plus the Table IV cost
cells (task cells) — through :func:`repro.scenarios.run_scenario`
against a fresh :class:`~repro.runtime.store.ResultStore`, then replays
it warm.  Gates (blocking):

* the warm run executes **zero** cells (``SweepStats.played == 0``) —
  every record loads from disk;
* the warm run's rendered artifact is **byte-identical** to the cold
  run's;
* the warm replay is faster than the cold run (it does no game work;
  measured ~30-100x on the dev container, gated at 2x for CI headroom).

The cold/warm wall-clock trajectory persists to
``benchmarks/results/BENCH_store.json`` next to the sweep/engine/batched
benchmarks.  Run standalone with ``python benchmarks/bench_store.py``.
"""

import json
import os
import shutil
import tempfile
import time

from repro.runtime import ResultStore
from repro.scenarios import get_scenario, run_scenario

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_store.json")

#: Scenarios benched: one game sweep, one task sweep.
SCENARIOS = (
    ("table3", {"repetitions": "3", "p_values": "0.0,0.25,0.5,0.75,1.0"}),
    ("table4", {}),
)
#: Warm replay must beat the cold run by at least this factor.  Measured
#: ~30-100x on the dev container (the warm path is pure JSON loading);
#: the low gate absorbs slow CI filesystems.
MIN_WARM_SPEEDUP = 2.0


def _timed_run(name: str, overrides: dict, store: ResultStore):
    t0 = time.perf_counter()
    run = run_scenario(
        get_scenario(name), overrides=overrides, store=store
    )
    return time.perf_counter() - t0, run


def run_store_benchmark() -> dict:
    """Cold-vs-warm the benched scenarios; return the payload."""
    points = []
    root = tempfile.mkdtemp(prefix="bench-store-")
    try:
        for name, overrides in SCENARIOS:
            store = ResultStore(os.path.join(root, name))
            cold_s, cold = _timed_run(name, overrides, store)
            warm_s, warm = _timed_run(name, overrides, store)
            points.append(
                {
                    "scenario": name,
                    "cells": cold.stats.total,
                    "cold_seconds": cold_s,
                    "warm_seconds": warm_s,
                    "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
                    "cold_played": cold.stats.played,
                    "warm_played": warm.stats.played,
                    "byte_identical": warm.text == cold.text,
                }
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "benchmark": "result store cold run vs warm-cache replay",
        "min_warm_speedup_gate": MIN_WARM_SPEEDUP,
        "points": points,
    }


def _persist(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_store_cold_vs_warm(report):
    payload = run_store_benchmark()
    _persist(payload)
    lines = ["Result store: cold run vs warm-cache replay"]
    for point in payload["points"]:
        lines.append(
            f"{point['scenario']:>8} ({point['cells']} cells): "
            f"{point['cold_seconds']:.3f}s -> {point['warm_seconds']:.3f}s "
            f"({point['speedup']:.1f}x), warm played "
            f"{point['warm_played']}, byte-identical: "
            f"{point['byte_identical']}"
        )
    report("store", "\n".join(lines))

    for point in payload["points"]:
        # Correctness gates: zero executions, identical artifact.
        assert point["cold_played"] == point["cells"]
        assert point["warm_played"] == 0, (
            f"warm run of {point['scenario']} executed "
            f"{point['warm_played']} cells"
        )
        assert point["byte_identical"], (
            f"warm render of {point['scenario']} diverged from cold"
        )
        # Performance gate: replay must clearly beat recompute.
        assert point["speedup"] >= MIN_WARM_SPEEDUP, (
            f"warm replay of {point['scenario']} only "
            f"{point['speedup']:.2f}x faster (gate {MIN_WARM_SPEEDUP}x)"
        )


if __name__ == "__main__":
    result = run_store_benchmark()
    _persist(result)
    print(json.dumps(result, indent=2))
    print(f"written to {BENCH_PATH}")
