"""Fig. 8 — SOM classification comparison on Creditcard.

Quantifies the paper's qualitative map comparison: per scheme, the
survival of the seven minority points (fraud + premium singletons and
the five "green" prospects), the retained poison share, the number of
clusters visible on the trained map, and the quantization error against
clean data.

Paper shapes asserted: Ostrich retains every minority point but also the
whole poison mass (its map is crowded by the poison cluster), while the
proposed schemes cut the poison share below Ostrich's.
"""

from repro.experiments import SOMConfig, format_table, run_som_experiment

from conftest import once

CONFIG = SOMConfig(bulk_size=1500, rounds=8, som_iterations=3000, grid=(10, 10))


def test_fig8_som_comparison(benchmark, report):
    results = once(benchmark, run_som_experiment, CONFIG)

    text = format_table(
        ["scheme", "minority kept (of 7)", "poison share", "map clusters",
         "quantization error"],
        [
            (
                r.scheme,
                r.minority_retained,
                r.poison_retained_fraction,
                r.cluster_count,
                r.quantization_error,
            )
            for r in results
        ],
        title="Fig. 8: SOM comparison on Creditcard (T_th=0.95, attack ratio 0.4)",
    )
    report("fig8_som", text)

    table = {r.scheme: r for r in results}
    assert table["groundtruth"].minority_retained == 7
    assert table["ostrich"].minority_retained == 7
    assert table["ostrich"].poison_retained_fraction > 0.2
    # Tit-for-tat both reduces the poison share below Ostrich's and keeps
    # more of the minority structure than the static baselines (the
    # paper's map comparison: baselines lose the isolated points).
    assert (
        table["titfortat"].poison_retained_fraction
        < table["ostrich"].poison_retained_fraction
    )
    assert (
        table["titfortat"].minority_retained
        >= max(
            table["baseline0.9"].minority_retained,
            table["baseline_static"].minority_retained,
        )
    )
