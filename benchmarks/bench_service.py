"""DefenseService benchmark: multiplexed live sessions vs the solo loop.

The serving layer's claim is that many concurrent same-configuration
tenants should not each pay the per-round Python loop: the
:class:`~repro.serving.DefenseService` steps a whole cohort through one
vectorized lockstep round (the PR-3 kernels, with strategy lanes rebuilt
each round from the tenants' live instances).  This bench opens R
tenants of one defense configuration, plays every tenant to its 20-round
horizon twice — once as R independent
:class:`~repro.core.session.GameSession` loops, once through
``DefenseService.submit_many`` — and reports session-rounds/sec for
both, including tenant onboarding in both timings.

Workloads:

* ``taxi`` (headline, gated) — 1-D scalar collection, the paper's
  live-stream shape.  Rounds are Python-overhead-bound, which is
  exactly what multiplexing removes: ~3.7x at R = 32 on the dev
  container, gated at 2x for noisy CI runners.
* ``control`` (reported, ungated) — 60-dimensional batches.  Here the
  round is numpy-compute-bound (the norms dominate), so lockstep saves
  only the loop overhead (~1.2x).  The point is recorded so the
  trade-off stays visible instead of silently truncated.

Correctness gate (non-negotiable, both workloads): every multiplexed
tenant's final board must equal its solo session's board, record for
record — the byte-identity contract of the lockstep path.  Results are
persisted to ``benchmarks/results/BENCH_service.json``.

Run standalone with ``python benchmarks/bench_service.py``.
"""

import json
import os
import time

from repro import ComponentSpec, DefenseService, GameSpec
from repro.core.strategies import ElasticAdversary, ElasticCollector

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_service.json")

#: Concurrent same-configuration tenant counts; the gate applies at
#: GATED_SESSIONS on the GATED_DATASET workload.
SESSION_COUNTS = (8, 32)
GATED_SESSIONS = 32
GATED_DATASET = "taxi"
#: CI regression gate.  Measured ~3.7x at R=32 on the dev container
#: (see results/BENCH_service.json); the blocking assertion keeps
#: headroom for noisy shared CI runners, like the sibling engine gates.
MIN_SPEEDUP = 2.0

ROUNDS = 20
BATCH_SIZE = 100

#: (dataset, dataset_size) workloads; None size = the full dataset.
WORKLOADS = (("taxi", 2000), ("control", None))


def _spec(dataset: str, dataset_size, seed: int) -> GameSpec:
    """One tenant's recipe; tenants differ only in their seed."""
    return GameSpec(
        collector=ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5}),
        adversary=ComponentSpec(ElasticAdversary, {"t_th": 0.9, "k": 0.5}),
        dataset=dataset,
        dataset_size=dataset_size,
        attack_ratio=0.2,
        rounds=ROUNDS,
        batch_size=BATCH_SIZE,
        store_retained=False,
        seed=seed,
    )


def _solo(dataset: str, dataset_size, n_sessions: int):
    """R independent session loops (the per-tenant baseline)."""
    t0 = time.perf_counter()
    results = []
    for r in range(n_sessions):
        session = _spec(dataset, dataset_size, r).session()
        while not session.done:
            session.submit()
        results.append(session.close())
    return time.perf_counter() - t0, results


def _multiplexed(dataset: str, dataset_size, n_sessions: int):
    """The same tenants through one DefenseService lockstep cohort."""
    t0 = time.perf_counter()
    service = DefenseService()
    sids = [
        service.open(_spec(dataset, dataset_size, r))
        for r in range(n_sessions)
    ]
    for _ in range(ROUNDS):
        service.submit_many(sids)
    results = [service.close(sid) for sid in sids]
    return time.perf_counter() - t0, results


def run_service_benchmark() -> dict:
    """Time solo vs multiplexed per workload; assert board equality."""
    points = []
    for dataset, dataset_size in WORKLOADS:
        for n_sessions in SESSION_COUNTS:
            solo_s, solo_results = _solo(dataset, dataset_size, n_sessions)
            mux_s, mux_results = _multiplexed(
                dataset, dataset_size, n_sessions
            )
            identical = all(
                solo.to_records() == mux.to_records()
                and solo.termination_round == mux.termination_round
                for solo, mux in zip(solo_results, mux_results)
            )
            total_rounds = n_sessions * ROUNDS
            points.append(
                {
                    "dataset": dataset,
                    "sessions": n_sessions,
                    "rounds_per_session": ROUNDS,
                    "solo_seconds": solo_s,
                    "multiplexed_seconds": mux_s,
                    "solo_rounds_per_second": total_rounds / solo_s,
                    "multiplexed_rounds_per_second": total_rounds / mux_s,
                    "speedup": solo_s / mux_s,
                    "boards_identical": bool(identical),
                }
            )
    return {
        "workload": {
            "scheme": "elastic0.5",
            "datasets": [w[0] for w in WORKLOADS],
            "attack_ratio": 0.2,
            "rounds": ROUNDS,
            "batch_size": BATCH_SIZE,
        },
        "gate": {
            "dataset": GATED_DATASET,
            "sessions": GATED_SESSIONS,
            "min_speedup": MIN_SPEEDUP,
        },
        "points": points,
    }


def _persist(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_defense_service(report):
    payload = run_service_benchmark()
    _persist(payload)
    lines = ["DefenseService (solo session loops vs multiplexed lockstep)"]
    for point in payload["points"]:
        lines.append(
            f"{point['dataset']:>8} R={point['sessions']:>3}: "
            f"{point['solo_rounds_per_second']:.0f} -> "
            f"{point['multiplexed_rounds_per_second']:.0f} session-rounds/s "
            f"({point['speedup']:.2f}x), boards identical: "
            f"{point['boards_identical']}"
        )
    report("defense_service", "\n".join(lines))

    # Correctness gate: multiplexing must not change a single bit.
    for point in payload["points"]:
        assert point["boards_identical"], (
            f"multiplexed boards diverged at R={point['sessions']} "
            f"on {point['dataset']}"
        )
    # Performance gate on the headline (overhead-bound) workload.
    gated = next(
        p
        for p in payload["points"]
        if p["sessions"] == GATED_SESSIONS and p["dataset"] == GATED_DATASET
    )
    assert gated["speedup"] >= MIN_SPEEDUP, (
        f"multiplexed speedup {gated['speedup']:.2f}x below the "
        f"{MIN_SPEEDUP}x gate at R={GATED_SESSIONS} on {GATED_DATASET}"
    )


if __name__ == "__main__":
    result = run_service_benchmark()
    _persist(result)
    print(json.dumps(result, indent=2))
    print(f"written to {BENCH_PATH}")
