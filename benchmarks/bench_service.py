"""DefenseService benchmark: multiplexed live sessions vs the solo loop.

The serving layer's claim is that many concurrent tenants should not
each pay the per-round Python loop: the
:class:`~repro.serving.DefenseService` steps a whole cohort through one
vectorized lockstep round.  Since PR 8 the cohort key is the *fusion
family* (strategy-family lanes with ``(L,)`` parameter columns), so
tenants with different strategy pairs and attack ratios fuse too —
the heterogeneous workload below is the tentpole's headline number.
Each workload opens R tenants and plays every tenant to its 20-round
horizon twice — once as R independent
:class:`~repro.core.session.GameSession` loops, once through
``DefenseService.submit_many`` — and reports session-rounds/sec for
both, including tenant onboarding in both timings.

Workloads:

* ``taxi`` (homogeneous, gated) — R same-configuration tenants on the
  paper's 1-D live-stream shape.  Rounds are Python-overhead-bound,
  which is exactly what multiplexing removes: ~4x at R = 32 on the dev
  container, gated at 2x for noisy CI runners.
* ``hetero-taxi`` (heterogeneous, gated) — the same shape but tenants
  cycle through three strategy schemes x three attack ratios: nine
  distinct configurations that the pre-fusion service served solo.
  Gated at 2x (measured ~4x; the pre-fusion service scores exactly
  1x here by construction).
* ``control`` (reported, ungated) — 60-dimensional batches.  Here the
  round is numpy-compute-bound (the norms dominate), so lockstep saves
  only the loop overhead (~1.2x).  The point is recorded so the
  trade-off stays visible instead of silently truncated.

Correctness gate (non-negotiable, every workload): every multiplexed
tenant's final board must equal its solo session's board, record for
record — the byte-identity contract of the lockstep path.  Results are
persisted to ``benchmarks/results/BENCH_service.json``.

Run standalone with ``python benchmarks/bench_service.py``.
"""

import json
import os
import resource
import time

from repro import ComponentSpec, DefenseService, GameSpec
from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    JustBelowAdversary,
    MirrorCollector,
    TitForTatCollector,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_service.json")

#: Concurrent tenant counts; the gates apply at GATED_SESSIONS on the
#: GATED_WORKLOADS.
SESSION_COUNTS = (8, 32)
GATED_SESSIONS = 32
GATED_WORKLOADS = ("taxi", "hetero-taxi")
#: CI regression gates.  The total-wall-clock gate keeps ample headroom
#: for noisy shared CI runners, like the sibling engine gates; the
#: steady-state gates (per gated workload) pin the PR 9 deferred-
#: writeback win — serving-phase speedups measured well above them on
#: this container (see results/BENCH_service.json).
MIN_SPEEDUP = 2.0
MIN_STEADY_SPEEDUP = {"taxi": 4.0, "hetero-taxi": 2.5}

#: 60-round horizons: tenants are long-lived, so the serving phase —
#: not the one-time onboarding both paths pay identically — dominates
#: the wall clock, as it does for a resident service.  The
#: ``steady_state_speedup`` column isolates the serving phase exactly.
ROUNDS = 60
BATCH_SIZE = 100

#: The heterogeneous tenant population: three schemes x three ratios.
HETERO_SCHEMES = (
    (
        "tft",
        ComponentSpec(TitForTatCollector, {"t_th": 0.9, "trigger": None}),
        ComponentSpec(FixedAdversary, {"percentile": 0.99}),
    ),
    (
        "elastic0.5",
        ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5}),
        ComponentSpec(ElasticAdversary, {"t_th": 0.9, "k": 0.5}),
    ),
    (
        "mirror",
        ComponentSpec(MirrorCollector, {"t_th": 0.9}),
        ComponentSpec(JustBelowAdversary, {"initial_threshold": 0.9}),
    ),
)
HETERO_RATIOS = (0.1, 0.2, 0.3)


def _homo_spec(dataset: str, dataset_size, seed: int) -> GameSpec:
    """One same-configuration tenant; tenants differ only in the seed."""
    return GameSpec(
        collector=ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5}),
        adversary=ComponentSpec(ElasticAdversary, {"t_th": 0.9, "k": 0.5}),
        dataset=dataset,
        dataset_size=dataset_size,
        attack_ratio=0.2,
        rounds=ROUNDS,
        batch_size=BATCH_SIZE,
        store_retained=False,
        seed=seed,
    )


def _hetero_spec(seed: int) -> GameSpec:
    """Tenant ``seed`` of the mixed-scheme, mixed-ratio population."""
    _, collector, adversary = HETERO_SCHEMES[seed % len(HETERO_SCHEMES)]
    ratio = HETERO_RATIOS[(seed // len(HETERO_SCHEMES)) % len(HETERO_RATIOS)]
    return GameSpec(
        collector=collector,
        adversary=adversary,
        dataset="taxi",
        dataset_size=2000,
        attack_ratio=ratio,
        rounds=ROUNDS,
        batch_size=BATCH_SIZE,
        store_retained=False,
        seed=seed,
    )


#: label -> per-tenant spec recipe.
WORKLOADS = (
    ("taxi", lambda seed: _homo_spec("taxi", 2000, seed)),
    ("hetero-taxi", _hetero_spec),
    ("control", lambda seed: _homo_spec("control", None, seed)),
)


def _solo(spec_fn, n_sessions: int):
    """R independent session loops (the per-tenant baseline).

    Returns ``(onboard_seconds, round_seconds, results)``.
    """
    t0 = time.perf_counter()
    sessions = [spec_fn(r).session() for r in range(n_sessions)]
    t1 = time.perf_counter()
    results = []
    for session in sessions:
        while not session.done:
            session.submit()
        results.append(session.close())
    return t1 - t0, time.perf_counter() - t1, results


def _multiplexed(spec_fn, n_sessions: int):
    """The same tenants through one DefenseService lockstep cohort.

    Returns ``(onboard_seconds, round_seconds, results, stats)``; the
    round timing includes the closing flush of the deferred sinks, so
    the columnar writeback pays for itself inside the timed window.
    """
    t0 = time.perf_counter()
    service = DefenseService()
    sids = [service.open(spec_fn(r)) for r in range(n_sessions)]
    t1 = time.perf_counter()
    for _ in range(ROUNDS):
        service.submit_many(sids)
    results = [service.close(sid) for sid in sids]
    return t1 - t0, time.perf_counter() - t1, results, service.stats


def _peak_rss_kib() -> int:
    """Peak RSS of this process so far, in KiB (Linux ``ru_maxrss``).

    The kernel counter is a monotonic high-water mark, so each point
    records the peak *as of* that point — the final gated point is the
    run's true peak.
    """
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_service_benchmark() -> dict:
    """Time solo vs multiplexed per workload; assert board equality."""
    points = []
    for label, spec_fn in WORKLOADS:
        for n_sessions in SESSION_COUNTS:
            solo_on, solo_rounds, solo_results = _solo(spec_fn, n_sessions)
            mux_on, mux_rounds, mux_results, stats = _multiplexed(
                spec_fn, n_sessions
            )
            identical = all(
                solo.to_records() == mux.to_records()
                and solo.termination_round == mux.termination_round
                for solo, mux in zip(solo_results, mux_results, strict=False)
            )
            solo_s = solo_on + solo_rounds
            mux_s = mux_on + mux_rounds
            total_rounds = n_sessions * ROUNDS
            points.append(
                {
                    "dataset": label,
                    "sessions": n_sessions,
                    "rounds_per_session": ROUNDS,
                    "solo_seconds": solo_s,
                    "multiplexed_seconds": mux_s,
                    "solo_onboard_seconds": solo_on,
                    "multiplexed_onboard_seconds": mux_on,
                    "solo_rounds_per_second": total_rounds / solo_s,
                    "multiplexed_rounds_per_second": total_rounds / mux_s,
                    "speedup": solo_s / mux_s,
                    "steady_state_speedup": solo_rounds / mux_rounds,
                    "lane_build_seconds": stats.lane_build_seconds,
                    "kernel_seconds": stats.kernel_seconds,
                    "absorb_seconds": stats.absorb_seconds,
                    "peak_rss_kib": _peak_rss_kib(),
                    "boards_identical": bool(identical),
                }
            )
    return {
        "workload": {
            "homogeneous_scheme": "elastic0.5",
            "heterogeneous_schemes": [s[0] for s in HETERO_SCHEMES],
            "heterogeneous_ratios": list(HETERO_RATIOS),
            "datasets": [w[0] for w in WORKLOADS],
            "rounds": ROUNDS,
            "batch_size": BATCH_SIZE,
        },
        "gate": {
            "datasets": list(GATED_WORKLOADS),
            "sessions": GATED_SESSIONS,
            "min_speedup": MIN_SPEEDUP,
            "min_steady_state_speedup": dict(MIN_STEADY_SPEEDUP),
        },
        "points": points,
    }


def _persist(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_defense_service(report):
    payload = run_service_benchmark()
    _persist(payload)
    lines = ["DefenseService (solo session loops vs multiplexed lockstep)"]
    for point in payload["points"]:
        lines.append(
            f"{point['dataset']:>12} R={point['sessions']:>3}: "
            f"{point['solo_rounds_per_second']:.0f} -> "
            f"{point['multiplexed_rounds_per_second']:.0f} session-rounds/s "
            f"({point['speedup']:.2f}x, steady-state "
            f"{point['steady_state_speedup']:.2f}x), boards identical: "
            f"{point['boards_identical']}"
        )
        lines.append(
            f"{'':>12} phases: build {point['lane_build_seconds']:.3f}s, "
            f"kernel {point['kernel_seconds']:.3f}s, "
            f"absorb {point['absorb_seconds']:.3f}s; "
            f"peak RSS {point['peak_rss_kib'] / 1024:.0f} MiB"
        )
    report("defense_service", "\n".join(lines))

    # Correctness gate: multiplexing must not change a single bit.
    for point in payload["points"]:
        assert point["boards_identical"], (
            f"multiplexed boards diverged at R={point['sessions']} "
            f"on {point['dataset']}"
        )
    # Performance gates: the homogeneous headline must not regress, and
    # the fused heterogeneous workload must actually multiplex.
    for dataset in GATED_WORKLOADS:
        gated = next(
            p
            for p in payload["points"]
            if p["sessions"] == GATED_SESSIONS and p["dataset"] == dataset
        )
        assert gated["speedup"] >= MIN_SPEEDUP, (
            f"multiplexed speedup {gated['speedup']:.2f}x below the "
            f"{MIN_SPEEDUP}x gate at R={GATED_SESSIONS} on {dataset}"
        )
        steady_gate = MIN_STEADY_SPEEDUP[dataset]
        assert gated["steady_state_speedup"] >= steady_gate, (
            f"steady-state speedup {gated['steady_state_speedup']:.2f}x "
            f"below the {steady_gate}x gate at R={GATED_SESSIONS} "
            f"on {dataset}"
        )


if __name__ == "__main__":
    from profiling import parse_bench_args, run_maybe_profiled

    cli = parse_bench_args(__doc__.splitlines()[0])
    result = run_maybe_profiled(cli, "service", run_service_benchmark)
    _persist(result)
    print(json.dumps(result, indent=2))
    print(f"written to {BENCH_PATH}")
