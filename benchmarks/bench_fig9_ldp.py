"""Fig. 9 — trimming defenses vs EMF under LDP perturbation.

MSE of the mean estimate over the Taxi stand-in against the privacy
budget ε, per attack ratio, for Titfortat / Elastic 0.1 / Elastic 0.5
(percentile trimming of Piecewise-Mechanism reports) and the EMF
baseline (mixture EM over Square-Wave reports), under the input
manipulation attack.

Paper shapes asserted: the trimming schemes beat EMF once the noise is
moderate (ε ≥ 2 — the paper's inflection sits near ε = 1.5), and MSE
grows with the attack ratio.
"""

from repro.experiments import LDPConfig, format_table, run_ldp_experiment

from conftest import once

CONFIG = LDPConfig(
    epsilons=(1.0, 1.5, 2.0, 3.0, 4.0, 5.0),
    attack_ratios=(0.05, 0.2, 0.45),
    n_users=1500,
    rounds=3,
    repetitions=3,
    reference_size=3000,
)


def test_fig9_ldp_comparison(benchmark, report):
    cells = once(benchmark, run_ldp_experiment, CONFIG)

    text = format_table(
        ["attack ratio", "epsilon", "scheme", "MSE"],
        [(c.attack_ratio, c.epsilon, c.scheme, c.mse) for c in cells],
        title="Fig. 9: MSE vs privacy budget under the input manipulation "
        "attack (Taxi stand-in)",
    )
    report("fig9_ldp", text)

    table = {(c.scheme, c.epsilon, c.attack_ratio): c.mse for c in cells}
    # Paper shape: the trimming schemes dominate EMF on the moderate-noise
    # band (the inflection sits near eps = 1.5; at very large eps the
    # attack spike becomes distributionally separable so EMF recovers).
    # (At ratio 0.05 / eps <= 2 the trimming overhead is comparable to the
    # tiny attack — the paper's low-ratio inflection region — and at the
    # extreme ratio 0.45 only Tit-for-tat's harder trim keeps pace, so the
    # dominance claim is asserted where the attack actually matters.)
    for ratio, eps in ((0.05, 3.0), (0.2, 2.0), (0.2, 3.0)):
        for scheme in ("titfortat", "elastic0.1", "elastic0.5"):
            assert table[(scheme, eps, ratio)] < table[("emf", eps, ratio)]
    for eps in (2.0, 3.0):
        assert table[("titfortat", eps, 0.45)] < table[("emf", eps, 0.45)]
    # MSE grows with the attack ratio for the undefendable EMF baseline.
    assert table[("emf", 3.0, 0.45)] > table[("emf", 3.0, 0.05)]
