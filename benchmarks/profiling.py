"""Opt-in cProfile harness shared by the standalone benchmark CLIs.

``python benchmarks/bench_service.py --profile`` (and the same flag on
``bench_batched_engine.py``) wraps the benchmark body in
:mod:`cProfile` and dumps the top functions by cumulative time to
``benchmarks/results/PROFILE_<name>.txt`` — the artifact that told PR 9
where the per-lane bookkeeping floor actually was.  The flag is off by
default so profiled runs never pollute the persisted BENCH timings.
"""

import argparse
import cProfile
import os
import pstats

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def parse_bench_args(description: str) -> argparse.Namespace:
    """The shared CLI of the standalone benchmark entry points."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and dump the top functions by "
        "cumulative time to benchmarks/results/PROFILE_<bench>.txt",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=30,
        metavar="N",
        help="rows of the cumulative-time profile to keep (default 30)",
    )
    return parser.parse_args()


def run_maybe_profiled(args: argparse.Namespace, name: str, fn):
    """Run ``fn()``, under cProfile when ``--profile`` was passed.

    Returns ``fn``'s result either way; the profile dump is a side
    artifact, never part of the persisted benchmark payload.
    """
    if not getattr(args, "profile", False):
        return fn()
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"PROFILE_{name}.txt")
    with open(path, "w") as handle:
        stats = pstats.Stats(profiler, stream=handle)
        stats.sort_stats("cumulative").print_stats(args.profile_top)
    print(f"profile written to {path}")
    return result
