"""Ablation — Elastic update-rule variants and response strengths.

DESIGN.md §4 calls out the update-rule choice: the §VI-A anchored
proportional rule ("paper") contracts at rate k per round (larger k =
slower), while the exponentially smoothed variant ("relaxation")
converges faster for stronger responses — the behaviour Table IV
reports.  This ablation quantifies both rules across k, plus the
distance of the Stackelberg discretized solution from the Elastic
interactive equilibrium.
"""

import numpy as np

from repro.core.stackelberg import linear_response_fixed_point
from repro.experiments import format_table
from repro.experiments.cost import roundwise_cost

from conftest import once

STRENGTHS = (0.1, 0.3, 0.5, 0.7)
ROUNDS = 30


def _sweep():
    rows = []
    for k in STRENGTHS:
        t_star, a_star = linear_response_fixed_point(0.9, k)
        rows.append(
            (
                k,
                roundwise_cost(0.9, k, ROUNDS, rule="paper"),
                roundwise_cost(0.9, k, ROUNDS, rule="relaxation"),
                t_star,
                a_star,
            )
        )
    return rows


def test_ablation_elastic_rules(benchmark, report):
    rows = once(benchmark, _sweep)

    text = format_table(
        ["k", "paper-rule cost", "relaxation cost", "T*", "A*"],
        rows,
        title=f"Ablation: Elastic update rules, roundwise cost over {ROUNDS} rounds",
    )
    report("ablation_elastic_rules", text)

    paper_costs = [r[1] for r in rows]
    relax_costs = [r[2] for r in rows]
    # Relaxation: stronger response -> cheaper (Table IV's direction).
    assert relax_costs[-1] < relax_costs[0]
    # Paper rule: stronger response -> slower contraction -> costlier.
    assert paper_costs[-1] > paper_costs[0]
    # Both rules share the same interactive equilibrium.
    for k in STRENGTHS:
        t1, a1 = linear_response_fixed_point(0.9, k)
        assert np.isfinite(t1) and np.isfinite(a1)
