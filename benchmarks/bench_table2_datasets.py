"""Table II — dataset information.

Regenerates the dataset inventory by actually running every stand-in
generator (large datasets verified at reduced size, as noted in the
registry) and prints the advertised Table II rows.
"""

from repro.datasets import DATASETS, dataset_info
from repro.experiments import format_table

from conftest import once


def test_table2_dataset_info(benchmark, report):
    verified = once(benchmark, dataset_info, True)

    rows = [
        (
            info.name,
            DATASETS[key].instances,
            info.features,
            info.clusters,
        )
        for key, info in verified.items()
    ]
    text = format_table(
        ["Dataset", "Instances", "Features", "Clusters"],
        rows,
        title="Table II: dataset information (stand-in generators)",
    )
    report("table2_datasets", text)

    assert verified["control"].features == 60
    assert verified["letter"].clusters == 26
    assert verified["creditcard"].clusters == 4
