"""Fig. 4 — k-means clustering quality under equilibrium play, T_th = 0.9.

Regenerates the SSE and centroid-Distance series over Control, Vehicle
and Letter for every scheme, with attack ratios drawn from the paper's
three intervals ([0, 0.01], [0.05, 0.15], [0.2, 0.5]).  Scaled down
(fewer repetitions/ratios, Letter subsampled) for benchmark runtime —
the paper averages 100 repetitions of 20 rounds.

Paper shapes asserted: Ostrich is (near-)optimal at negligible attack
ratios but degrades to the worst as poison dominates, while Tit-for-tat
absorbs the attack at a constant trimming overhead.
"""

import pytest

from repro.experiments import (
    EquilibriumConfig,
    format_table,
    run_kmeans_experiment,
)

from conftest import once

RATIOS = (0.002, 0.01, 0.1, 0.2, 0.35, 0.5)

CONFIGS = {
    "control": EquilibriumConfig(
        dataset="control", t_th=0.9, attack_ratios=RATIOS,
        repetitions=2, rounds=10, seed=1,
    ),
    "vehicle": EquilibriumConfig(
        dataset="vehicle", t_th=0.9, attack_ratios=RATIOS,
        repetitions=2, rounds=10, seed=2,
    ),
    "letter": EquilibriumConfig(
        dataset="letter", t_th=0.9, attack_ratios=RATIOS,
        repetitions=1, rounds=10, dataset_size=3000, batch_size=300, seed=3,
    ),
}


def _render(dataset, cells):
    return format_table(
        ["scheme", "attack ratio", "SSE", "Distance"],
        [(c.scheme, c.attack_ratio, c.sse, c.distance) for c in cells],
        title=f"Fig. 4 ({dataset}, T_th=0.9): SSE and centroid distance",
    )


@pytest.mark.parametrize("dataset", ["control", "vehicle", "letter"])
def test_fig4_kmeans(dataset, benchmark, report):
    cells = once(benchmark, run_kmeans_experiment, CONFIGS[dataset])
    report(f"fig4_kmeans_t90_{dataset}", _render(dataset, cells))

    table = {(c.scheme, c.attack_ratio): c for c in cells}
    low, high = RATIOS[0], RATIOS[-1]
    # Ostrich: near-optimal with few poison values, worst when dominant.
    assert table[("ostrich", high)].distance > table[("ostrich", low)].distance
    # Tit-for-tat pays a constant overhead but resists the heavy attack.
    assert (
        table[("titfortat", high)].sse
        < table[("ostrich", high)].sse
    )
