"""Batched replication engine benchmark: solo rep loop vs lockstep stacks.

The third layer of the perf stack (PR 1: across cells, PR 2: within
rounds, PR 3: across reps) collapses the repetition axis of a sweep cell
into one :class:`~repro.core.engine.BatchedCollectionGame`.  This bench
plays the tournament workload — the default meta-game's 16 (collector ×
adversary) pairings of 10-round games — at R ∈ {8, 32, 128} repetitions
per cell, through the same :class:`~repro.runtime.runner.SweepRunner`
twice: once with the solo per-spec loop (``rep_batch=None``) and once
with the repetition axis collapsed (``rep_batch="auto"``).

Correctness gate (non-negotiable): every record of the batched run must
equal the solo run's record for the same spec — the per-rep
byte-equality contract of the batched engine — at every R.  Performance:
~3.5x games/sec at R = 32 on the dev container, with a 2x blocking gate
that leaves headroom for noisy CI runners.  Results are persisted to
``benchmarks/results/BENCH_batched.json`` so the perf trajectory stays
inspectable per commit.

Run standalone with ``python benchmarks/bench_batched_engine.py``.
"""

import json
import os
import time

from repro.experiments.tournament import (
    TournamentConfig,
    _default_adversaries,
    _default_collectors,
)
from repro.runtime import SweepGrid, SweepRunner, cross_pairs

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_batched.json")

#: Repetition counts to sweep; the gate applies at GATED_REPS.
REP_COUNTS = (8, 32, 128)
GATED_REPS = 32
#: CI regression gate.  Measured ~3.5x at R=32 on the dev container
#: (see results/BENCH_batched.json); the blocking assertion keeps ample
#: headroom for noisy shared CI runners, like the sibling hot-loop
#: gates do.
MIN_SPEEDUP = 2.0

BASE = TournamentConfig()


def _grid(repetitions: int) -> SweepGrid:
    """The tournament grid at a given repetition count."""
    collectors = _default_collectors(BASE.t_th)
    adversaries = _default_adversaries(BASE.t_th)
    return SweepGrid(
        pairs=cross_pairs(collectors, adversaries),
        datasets=(BASE.dataset,),
        attack_ratios=(BASE.attack_ratio,),
        repetitions=repetitions,
        rounds=BASE.rounds,
        batch_size=BASE.batch_size,
        anchor="reference",
        store_retained=False,
        seed=BASE.seed,
    )


def _time_run(runner: SweepRunner, grid: SweepGrid):
    t0 = time.perf_counter()
    records = runner.run_grid(grid)
    return time.perf_counter() - t0, records


def run_batched_benchmark() -> dict:
    """Time solo vs batched at every R; assert record equality; report."""
    points = []
    for repetitions in REP_COUNTS:
        grid = _grid(repetitions)
        solo_s, solo_records = _time_run(SweepRunner(), grid)
        batched_s, batched_records = _time_run(
            SweepRunner(rep_batch="auto"), grid
        )
        n_games = grid.n_cells
        points.append(
            {
                "repetitions": repetitions,
                "n_games": n_games,
                "rounds": BASE.rounds,
                "solo_seconds": solo_s,
                "batched_seconds": batched_s,
                "solo_games_per_second": n_games / solo_s,
                "batched_games_per_second": n_games / batched_s,
                "speedup": solo_s / batched_s,
                "records_identical": bool(solo_records == batched_records),
            }
        )
    return {
        "workload": {
            "pairs": 16,
            "rounds": BASE.rounds,
            "batch_size": BASE.batch_size,
            "dataset": BASE.dataset,
            "attack_ratio": BASE.attack_ratio,
        },
        "gate": {"repetitions": GATED_REPS, "min_speedup": MIN_SPEEDUP},
        "points": points,
    }


def _persist(payload: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_batched_engine(report):
    payload = run_batched_benchmark()
    _persist(payload)
    lines = ["Batched replication engine (solo rep loop vs lockstep stacks)"]
    for point in payload["points"]:
        lines.append(
            f"R={point['repetitions']:>3}: "
            f"{point['solo_games_per_second']:.0f} -> "
            f"{point['batched_games_per_second']:.0f} games/s "
            f"({point['speedup']:.2f}x), records identical: "
            f"{point['records_identical']}"
        )
    report("batched_engine", "\n".join(lines))

    # Correctness gates: the batched engine must not change a single bit.
    for point in payload["points"]:
        assert point["records_identical"], (
            f"rep-batched records diverged at R={point['repetitions']}"
        )
    # Performance gate at the headline repetition count.
    gated = next(
        p for p in payload["points"] if p["repetitions"] == GATED_REPS
    )
    assert gated["speedup"] >= MIN_SPEEDUP, (
        f"batched speedup {gated['speedup']:.2f}x below the "
        f"{MIN_SPEEDUP}x gate at R={GATED_REPS}"
    )


if __name__ == "__main__":
    from profiling import parse_bench_args, run_maybe_profiled

    cli = parse_bench_args(__doc__.splitlines()[0])
    result = run_maybe_profiled(cli, "batched_engine", run_batched_benchmark)
    _persist(result)
    print(json.dumps(result, indent=2))
    print(f"written to {BENCH_PATH}")
