"""Fig. 5 — k-means clustering quality under equilibrium play, T_th = 0.97.

The conservative-threshold counterpart of Fig. 4: trimming is gentler,
so overhead shrinks at low attack ratios while high-ratio protection
weakens (the paper: "the trimming method adopted is more conservative,
thus diminishing the overhead at lower attack ratios ... less distinct
at higher attack ratios").  Control only, to bound the bench runtime —
the Fig. 4 bench covers all three datasets.
"""

from repro.experiments import (
    EquilibriumConfig,
    format_table,
    run_kmeans_experiment,
)

from conftest import once

RATIOS = (0.002, 0.01, 0.1, 0.2, 0.35, 0.5)

CONFIG_T97 = EquilibriumConfig(
    dataset="control", t_th=0.97, attack_ratios=RATIOS,
    repetitions=2, rounds=10, seed=1,
)
CONFIG_T90 = EquilibriumConfig(
    dataset="control", t_th=0.9, attack_ratios=RATIOS,
    repetitions=2, rounds=10, seed=1,
)


def test_fig5_kmeans_conservative_threshold(benchmark, report):
    cells = once(benchmark, run_kmeans_experiment, CONFIG_T97)
    text = format_table(
        ["scheme", "attack ratio", "SSE", "Distance"],
        [(c.scheme, c.attack_ratio, c.sse, c.distance) for c in cells],
        title="Fig. 5 (control, T_th=0.97): SSE and centroid distance",
    )
    report("fig5_kmeans_t97_control", text)

    table97 = {(c.scheme, c.attack_ratio): c for c in cells}
    table90 = {
        (c.scheme, c.attack_ratio): c
        for c in run_kmeans_experiment(CONFIG_T90)
    }
    low = RATIOS[0]
    # Conservative trimming diminishes overhead at low attack ratios:
    # the Tit-for-tat SSE at T_th=0.97 is below its T_th=0.9 SSE.
    assert (
        table97[("titfortat", low)].sse <= table90[("titfortat", low)].sse + 1e-6
    )
    # Ostrich still collapses at heavy ratios regardless of T_th.
    assert (
        table97[("ostrich", RATIOS[-1])].distance
        > table97[("ostrich", low)].distance
    )
