"""Table III — non-equilibrium results and average termination rounds.

The §VI-D sweep over the mixed-strategy parameter p (probability of the
equilibrium play): average Tit-for-tat termination round and the
untrimmed-poison share for Tit-for-tat and Elastic.

Paper shapes asserted: the declared-greedy adversary (p = 0) never
triggers the redundancy-protected trigger (termination pinned at the
cap, 25 for 20 rounds), termination arrives earlier as p grows (noise
false-flags tighter tolerances), and greedy play leaves more surviving
poison than equilibrium play for both schemes.
"""

from repro.experiments import (
    NonEquilibriumConfig,
    format_table,
    run_nonequilibrium,
)

from conftest import available_cpus, once

#: Fan the p-sweep out when the hardware allows; results are identical
#: to the serial run either way (see repro.runtime).
_WORKERS = min(4, available_cpus())

CONFIG = NonEquilibriumConfig(repetitions=8, workers=_WORKERS)


def test_table3_nonequilibrium(benchmark, report):
    rows = once(benchmark, run_nonequilibrium, CONFIG)

    text = format_table(
        ["p", "avg termination rounds", "Titfortat", "Elastic"],
        [
            (
                r.p,
                r.average_termination_rounds,
                r.titfortat_poison_fraction,
                r.elastic_poison_fraction,
            )
            for r in rows
        ],
        title="Table III: non-equilibrium results (Control, attack ratio 0.2)\n"
        "paper endpoints: termination 25 (p=0) -> 13 (p=1); "
        "Titfortat 0.227 -> 0.182; Elastic 0.227 -> 0.144",
    )
    report("table3_nonequilibrium", text)

    table = {r.p: r for r in rows}
    cap = CONFIG.rounds + 5
    assert table[0.0].average_termination_rounds == cap
    assert table[1.0].average_termination_rounds < cap - 5
    assert (
        table[0.0].titfortat_poison_fraction
        > table[1.0].titfortat_poison_fraction
    )
    assert (
        table[0.0].elastic_poison_fraction
        > table[1.0].elastic_poison_fraction
    )
