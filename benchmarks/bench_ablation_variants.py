"""Ablation — Tit-for-tat variants under noisy compliance judgement.

§V notes the classic Tit-for-tat variants can be adapted for repeated
games with uncertainty.  This ablation plays the grim trigger
(Algorithm 1), the mirroring Tit-for-tat, Generous Tit-for-tat and
Tit-for-two-tats against a *fully compliant* equilibrium adversary under
a noisy judge (false positives only), and reports how much collateral
hard trimming each variant inflicts — the §V-B cost of rigidity that
motivates redundancy and the Elastic strategy.
"""

import numpy as np

from repro.core.engine import CollectionGame, NoisyPositionJudge
from repro.core.strategies import (
    FixedAdversary,
    GenerousCollector,
    MirrorCollector,
    MixedStrategyTrigger,
    TitForTatCollector,
    TitForTwoTatsCollector,
)
from repro.core.trimming import RadialTrimmer
from repro.datasets import load_dataset
from repro.experiments import format_table
from repro.streams import ArrayStream, PoisonInjector

from conftest import once

ROUNDS = 30
FALSE_POSITIVE_RATE = 0.1
REPETITIONS = 5


def _collectors():
    return (
        (
            "grim trigger (Alg. 1)",
            lambda: TitForTatCollector(
                0.9, trigger=MixedStrategyTrigger(1.0, redundancy=0.05, warmup=5)
            ),
        ),
        ("mirror tit-for-tat", lambda: MirrorCollector(0.9)),
        ("generous (g=0.3)", lambda: GenerousCollector(0.9, 0.3, seed=11)),
        ("tit-for-two-tats", lambda: TitForTwoTatsCollector(0.9)),
    )


def _run():
    data, _ = load_dataset("control")
    rows = []
    for name, factory in _collectors():
        hard_rounds = []
        trimmed = []
        for rep in range(REPETITIONS):
            collector = factory()
            game = CollectionGame(
                source=ArrayStream(data, batch_size=100, seed=rep),
                collector=collector,
                adversary=FixedAdversary(0.99),  # fully compliant play
                injector=PoisonInjector(0.2, mode="radial", seed=rep + 1),
                trimmer=RadialTrimmer(),
                reference=data,
                judge=NoisyPositionJudge(
                    boundary=0.905,
                    miss_rate=0.0,
                    false_positive_rate=FALSE_POSITIVE_RATE,
                    seed=rep + 2,
                ),
                rounds=ROUNDS,
                anchor="batch",
            )
            result = game.run()
            thresholds = result.threshold_path()
            hard_rounds.append(int(np.sum(thresholds < 0.9)))
            trimmed.append(result.trimmed_fraction())
        rows.append(
            (
                name,
                float(np.mean(hard_rounds)),
                float(np.mean(trimmed)),
            )
        )
    return rows


def test_ablation_titfortat_variants(benchmark, report):
    rows = once(benchmark, _run)

    text = format_table(
        ["variant", f"hard rounds (of {ROUNDS})", "trimmed fraction"],
        rows,
        title="Ablation: Tit-for-tat variants vs a compliant adversary under "
        f"{FALSE_POSITIVE_RATE:.0%} judgement false positives",
    )
    report("ablation_titfortat_variants", text)

    by_name = {name: hard for name, hard, _ in rows}
    # The grim trigger, once falsely triggered, stays hard for the rest
    # of the game — the costliest reaction to noise.
    assert by_name["grim trigger (Alg. 1)"] >= by_name["mirror tit-for-tat"]
    # Generosity and two-tats tolerance both reduce spurious punishment.
    assert by_name["generous (g=0.3)"] < by_name["mirror tit-for-tat"]
    assert by_name["tit-for-two-tats"] < by_name["mirror tit-for-tat"]
