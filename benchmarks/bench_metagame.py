"""Meta-game — the empirical strategy tournament (beyond the paper).

Plays every collector strategy against every adversary strategy in full
collection games, scores each cell with the §III-B payoff reading
(position-weighted surviving poison vs zero-sum loss plus trimming
overhead), and solves the resulting matrix with the minimax LP.

Asserted headline: the empirical minimax collector is the Elastic
scheme — the analytical interactive equilibrium of the paper emerges
from pure simulation — while static trimming is exploited by the ideal
just-below attack and no-defense is exploited by extreme injection.
"""

from repro.experiments import TournamentConfig, format_table, run_tournament

from conftest import available_cpus, once

#: Fan the grid out when the hardware allows; results are identical to
#: the serial run either way (see repro.runtime).
_WORKERS = min(4, available_cpus())

CONFIG = TournamentConfig(repetitions=2, rounds=10, workers=_WORKERS)


def test_metagame_tournament(benchmark, report):
    result = once(benchmark, run_tournament, CONFIG)

    rows = []
    for i, aname in enumerate(result.adversary_names):
        for j, cname in enumerate(result.collector_names):
            rows.append(
                (
                    aname,
                    cname,
                    result.adversary_payoffs[i, j],
                    result.collector_payoffs[i, j],
                )
            )
    mixtures = ", ".join(
        f"{name}={weight:.2f}"
        for name, weight in zip(result.collector_names, result.collector_mixture, strict=False)
        if weight > 1e-6
    )
    text = format_table(
        ["adversary", "collector", "adversary payoff", "collector payoff"],
        rows,
        title="Meta-game: empirical payoff matrix over full collection games\n"
        f"minimax collector mixture: {mixtures}; "
        f"game value {result.game_value:.4f}",
    )
    report("metagame_tournament", text)

    assert result.best_collector() == "elastic0.5"
    # The ideal evasion exploits the static threshold...
    i = result.adversary_names.index("just-below")
    j = result.collector_names.index("static")
    assert result.adversary_payoffs[i, j] > 0.1
    # ...and extreme injection exploits the undefended collector.
    i = result.adversary_names.index("extreme@0.99")
    j = result.collector_names.index("ostrich")
    assert result.adversary_payoffs[i, j] > 0.15
