"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it times the
scaled-down experiment via pytest-benchmark and renders the same
rows/series the paper reports, both to stdout (visible with ``-s``) and to
``benchmarks/results/<artifact>.txt`` so EXPERIMENTS.md can reference the
measured numbers.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, cross-platform)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="session")
def report():
    """Print a rendered table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _report(artifact: str, text: str) -> None:
        print()
        print(text)
        path = os.path.join(RESULTS_DIR, f"{artifact}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")

    return _report


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    The experiments are end-to-end simulations (seconds each); a single
    timed round keeps the harness honest without repeating hours of work.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
